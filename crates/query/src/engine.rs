//! The query executor: admission control, the LRU front, and the
//! per-kind compute paths.
//!
//! ```text
//!   spec ──canonicalize──▶ u64 key ──▶ LRU hit? ──▶ cached bytes
//!                                        │ miss
//!                                        ▼
//!                            admission control (cost × in-flight)
//!                                        │ admitted
//!                                        ▼
//!              point ──▶ Ctx::program + simulate_lowered
//!              sweep ──▶ Ctx::sweep (or ArtifactCache when shadowing)
//!         projection ──▶ projection_input × horizon + project
//!                csr ──▶ csr / decompose
//!                                        │
//!                                        ▼
//!                       pretty JSON bytes ──▶ LRU insert ──▶ caller
//! ```
//!
//! The engine deliberately sits *beside* the per-experiment
//! [`ArtifactCache`]: registry targets keep their `OnceLock` slots and
//! retry machinery, while ad-hoc specs live in the byte-capped LRU. A
//! spec that shadows a registry target is delegated to the artifact
//! cache so both paths serve identical bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use accelerator_wall::artifacts::ArtifactCache;
use accelerator_wall::json::Value;
use accelwall_accelsim::sweep::{best_efficiency, best_performance};
use accelwall_accelsim::{simulate_lowered, DesignConfig, SimReport, SweepPoint};
use accelwall_cmos::TechNode;
use accelwall_projection::wall::projection_input;
use accelwall_projection::{project, Domain};
use accelwall_workloads::Workload;

use crate::canon::cache_key;
use crate::lru::{QueryCache, QueryCacheStats};
use crate::spec::{domain_label, metric_label, QueryKind, QuerySpec, FIELDS};
use crate::QueryError;

/// Default LRU budget for serving: enough for tens of thousands of
/// point responses, small next to one artifact sweep.
pub const DEFAULT_CACHE_BYTES: usize = 32 * 1024 * 1024;

/// Default admission budget in cost units (a sweep costs 64, a point 1).
pub const DEFAULT_ADMISSION_BUDGET: u64 = 256;

/// Counters the engine exports to `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// LRU behaviour.
    pub cache: QueryCacheStats,
    /// Specs actually computed (cache misses that ran the pipeline).
    pub computes: u64,
    /// Specs shed by admission control.
    pub shed: u64,
    /// Cost units currently in flight.
    pub in_flight: u64,
}

/// Answers validated specs, caching pre-serialized response bodies.
pub struct QueryEngine {
    artifacts: Arc<ArtifactCache>,
    lru: QueryCache,
    budget: u64,
    in_flight: AtomicU64,
    computes: AtomicU64,
    shed: AtomicU64,
}

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("budget", &self.budget)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Releases admitted cost even when the compute path errors or panics.
struct CostGuard<'a> {
    engine: &'a QueryEngine,
    cost: u64,
}

impl Drop for CostGuard<'_> {
    fn drop(&mut self) {
        self.engine.in_flight.fetch_sub(self.cost, Ordering::AcqRel);
    }
}

impl QueryEngine {
    /// Creates an engine over an artifact cache with the default
    /// admission budget.
    pub fn new(artifacts: Arc<ArtifactCache>, cache_bytes: usize) -> QueryEngine {
        QueryEngine::with_budget(artifacts, cache_bytes, DEFAULT_ADMISSION_BUDGET)
    }

    /// [`QueryEngine::new`] with an explicit admission budget — the
    /// hook tests use to force shedding deterministically.
    pub fn with_budget(
        artifacts: Arc<ArtifactCache>,
        cache_bytes: usize,
        budget: u64,
    ) -> QueryEngine {
        QueryEngine {
            artifacts,
            lru: QueryCache::new(cache_bytes),
            budget,
            in_flight: AtomicU64::new(0),
            computes: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Answers a spec: LRU first, then admission control, then the
    /// pipeline. The returned bytes are the exact wire body (pretty
    /// JSON plus a trailing newline).
    ///
    /// # Errors
    ///
    /// [`QueryError::Overloaded`] when shed, [`QueryError::Engine`]
    /// when the pipeline fails. Failed computes insert nothing, so a
    /// transient fault never poisons the cache.
    pub fn answer(&self, spec: &QuerySpec) -> Result<Arc<Vec<u8>>, QueryError> {
        let key = cache_key(spec);
        if let Some(body) = self.lru.get(key) {
            return Ok(body);
        }
        let guard = self.admit(spec)?;
        self.computes.fetch_add(1, Ordering::Relaxed);
        if let Err(fault) = accelwall_faults::probe(accelwall_faults::sites::QUERY_COMPUTE) {
            return Err(QueryError::Engine(fault.into()));
        }
        let json = self.execute(spec)?;
        drop(guard);
        let body = Arc::new(format!("{}\n", json.pretty()).into_bytes());
        self.lru.insert(key, Arc::clone(&body));
        Ok(body)
    }

    /// Admission control: reserve the spec's cost units, shedding when
    /// the reservation would push in-flight work past the budget. An
    /// armed `query-cache-admit` fault sheds unconditionally.
    fn admit(&self, spec: &QuerySpec) -> Result<CostGuard<'_>, QueryError> {
        let cost = spec.cost_units();
        if accelwall_faults::probe(accelwall_faults::sites::QUERY_CACHE_ADMIT).is_err() {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::Overloaded {
                cost,
                in_flight: self.in_flight.load(Ordering::Acquire),
                budget: 0,
            });
        }
        let mut current = self.in_flight.load(Ordering::Acquire);
        loop {
            if current + cost > self.budget {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::Overloaded {
                    cost,
                    in_flight: current,
                    budget: self.budget,
                });
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + cost,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(CostGuard { engine: self, cost }),
                Err(seen) => current = seen,
            }
        }
    }

    fn execute(&self, spec: &QuerySpec) -> Result<Value, QueryError> {
        if let Some(target) = spec.shadows() {
            // Shadowed specs serve the registry artifact verbatim, so
            // the body is byte-identical to `GET /experiments/{target}`.
            let artifact = self.artifacts.get(target)?;
            return Ok(artifact.json.clone());
        }
        match spec.kind {
            QueryKind::Point => self.execute_point(spec),
            QueryKind::Sweep => self.execute_sweep(spec),
            QueryKind::Projection => execute_projection(spec),
            QueryKind::Csr => execute_csr(spec),
        }
    }

    fn execute_point(&self, spec: &QuerySpec) -> Result<Value, QueryError> {
        // lint:allow(no-panic-paths): from_pairs' applicability check requires workload for point specs
        let workload = spec.workload.expect("validated: point requires workload");
        let config = DesignConfig::new(
            spec.node,
            spec.lanes,
            spec.simplification,
            spec.heterogeneity,
        );
        config
            .validate()
            .map_err(accelerator_wall::error::Error::from)?;
        let program = self.artifacts.ctx().program(workload)?;
        let report =
            simulate_lowered(&program, &config).map_err(accelerator_wall::error::Error::from)?;
        Ok(Value::object([
            ("kind", Value::from("point")),
            ("workload", Value::from(workload.abbrev())),
            ("node", Value::from(spec.node.to_string())),
            ("lanes", Value::from(spec.lanes)),
            ("simplification", Value::from(spec.simplification)),
            ("heterogeneity", Value::from(spec.heterogeneity)),
            ("report", report_json(&report)),
        ]))
    }

    fn execute_sweep(&self, spec: &QuerySpec) -> Result<Value, QueryError> {
        // lint:allow(no-panic-paths): from_pairs' applicability check requires workload for sweep specs
        let workload = spec.workload.expect("validated: sweep requires workload");
        let ctx = self.artifacts.ctx();
        let points = ctx.sweep(workload)?;
        let space = ctx.sweep_space();
        Ok(Value::object([
            ("kind", Value::from("sweep")),
            ("workload", Value::from(workload.abbrev())),
            ("points", Value::from(points.len())),
            ("nodes", Value::from(space.nodes.len())),
            (
                "best_efficiency",
                Value::from(best_efficiency(points).map(point_json)),
            ),
            (
                "best_performance",
                Value::from(best_performance(points).map(point_json)),
            ),
        ]))
    }

    /// Schema introspection: every field, its roster or range, and the
    /// kinds it applies to — the `/query/schema` response.
    pub fn schema() -> Value {
        schema_json()
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            cache: self.lru.stats(),
            computes: self.computes.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::Acquire),
        }
    }
}

fn report_json(report: &SimReport) -> Value {
    Value::object([
        ("cycles", Value::from(report.cycles)),
        ("runtime_s", Value::from(report.runtime_s)),
        ("power_w", Value::from(report.power_w())),
        ("dynamic_energy_j", Value::from(report.dynamic_energy_j)),
        ("leakage_w", Value::from(report.leakage_w)),
        ("area_units", Value::from(report.area_units)),
        ("ops", Value::from(report.ops)),
        (
            "critical_path_cycles",
            Value::from(report.critical_path_cycles),
        ),
        ("throughput_ops_s", Value::from(report.throughput())),
        (
            "energy_efficiency_ops_j",
            Value::from(report.energy_efficiency()),
        ),
    ])
}

fn point_json(point: &SweepPoint) -> Value {
    Value::object([
        ("node", Value::from(point.config.node.to_string())),
        ("partition", Value::from(point.config.partition_factor)),
        (
            "simplification",
            Value::from(point.config.simplification_degree),
        ),
        ("runtime_s", Value::from(point.report.runtime_s)),
        ("power_w", Value::from(point.report.power_w())),
    ])
}

fn execute_projection(spec: &QuerySpec) -> Result<Value, QueryError> {
    // lint:allow(no-panic-paths): from_pairs' applicability check requires domain for projections
    let domain = spec.domain.expect("validated: projection requires domain");
    let mut input =
        projection_input(domain, spec.metric).map_err(accelerator_wall::error::Error::from)?;
    input.physical_limit *= spec.horizon;
    let wall = project(&input).map_err(accelerator_wall::error::Error::from)?;
    Ok(Value::object([
        ("kind", Value::from("projection")),
        ("domain", Value::from(domain_label(domain))),
        ("platform", Value::from(domain.platform())),
        ("metric", Value::from(metric_label(spec.metric))),
        ("unit", Value::from(domain.unit(spec.metric))),
        ("horizon", Value::from(spec.horizon)),
        ("physical_limit", Value::from(wall.physical_limit)),
        ("current_best", Value::from(wall.current_best)),
        ("frontier_len", Value::from(wall.frontier_len)),
        ("linear_wall", Value::from(wall.linear_wall)),
        ("log_wall", Value::from(wall.log_wall)),
        ("further_linear", Value::from(wall.further_linear)),
        ("further_log", Value::from(wall.further_log)),
        (
            "linear_wall_band",
            Value::array([
                Value::from(wall.linear_wall_band.0),
                Value::from(wall.linear_wall_band.1),
            ]),
        ),
    ]))
}

fn execute_csr(spec: &QuerySpec) -> Result<Value, QueryError> {
    // lint:allow(no-panic-paths): from_pairs' applicability check requires reported for csr specs
    let reported = spec.reported.expect("validated: csr requires reported");
    // lint:allow(no-panic-paths): from_pairs' applicability check requires physical for csr specs
    let physical = spec.physical.expect("validated: csr requires physical");
    if let Some(base) = spec.physical_base {
        let d = accelwall_csr::decompose(reported, physical, base)
            .map_err(accelerator_wall::error::Error::from)?;
        Ok(Value::object([
            ("kind", Value::from("csr")),
            ("reported", Value::from(d.reported)),
            ("specialization", Value::from(d.specialization)),
            ("cmos", Value::from(d.cmos)),
        ]))
    } else {
        let ratio =
            accelwall_csr::csr(reported, physical).map_err(accelerator_wall::error::Error::from)?;
        Ok(Value::object([
            ("kind", Value::from("csr")),
            ("reported", Value::from(reported)),
            ("physical", Value::from(physical)),
            ("csr", Value::from(ratio)),
        ]))
    }
}

fn schema_json() -> Value {
    let field = |name: &str, ty: &str, default: Value, applies: &[&str], values: Value| {
        Value::object([
            ("name", Value::from(name)),
            ("type", Value::from(ty)),
            ("default", default),
            (
                "applies_to",
                applies.iter().map(|&k| Value::from(k)).collect(),
            ),
            ("values", values),
        ])
    };
    let workloads: Value = Workload::all()
        .iter()
        .map(|w| Value::from(w.abbrev().to_ascii_lowercase()))
        .collect();
    let nodes: Value = TechNode::all()
        .iter()
        .map(|n| Value::from(n.to_string()))
        .collect();
    let domains: Value = Domain::all()
        .iter()
        .map(|&d| Value::from(domain_label(d)))
        .collect();
    let kinds: Value = QueryKind::all()
        .iter()
        .map(|k| Value::from(k.label()))
        .collect();
    Value::object([
        ("kinds", kinds),
        (
            "field_order",
            FIELDS.iter().map(|&f| Value::from(f)).collect(),
        ),
        (
            "fields",
            Value::array([
                field(
                    "kind",
                    "enum",
                    Value::from("point"),
                    &["point", "sweep", "projection", "csr"],
                    QueryKind::all()
                        .iter()
                        .map(|k| Value::from(k.label()))
                        .collect(),
                ),
                field(
                    "workload",
                    "enum",
                    Value::Null,
                    &["point", "sweep"],
                    workloads,
                ),
                field("node", "enum", Value::from("45nm"), &["point"], nodes),
                field(
                    "lanes",
                    "integer (power of two, 1..=524288)",
                    Value::from(1u64),
                    &["point"],
                    Value::Null,
                ),
                field(
                    "simplification",
                    "integer (1..=13)",
                    Value::from(1u32),
                    &["point"],
                    Value::Null,
                ),
                field(
                    "heterogeneity",
                    "bool",
                    Value::from(false),
                    &["point"],
                    Value::Null,
                ),
                field("domain", "enum", Value::Null, &["projection"], domains),
                field(
                    "metric",
                    "enum",
                    Value::from("performance"),
                    &["projection"],
                    Value::array([Value::from("performance"), Value::from("efficiency")]),
                ),
                field(
                    "horizon",
                    "number (> 0)",
                    Value::from(1.0),
                    &["projection"],
                    Value::Null,
                ),
                field(
                    "reported",
                    "number (> 0)",
                    Value::Null,
                    &["csr"],
                    Value::Null,
                ),
                field(
                    "physical",
                    "number (> 0)",
                    Value::Null,
                    &["csr"],
                    Value::Null,
                ),
                field(
                    "physical_base",
                    "number (> 0)",
                    Value::Null,
                    &["csr"],
                    Value::Null,
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use accelerator_wall::cache::Ctx;
    use accelerator_wall::registry::Registry;
    use accelwall_accelsim::SweepSpace;

    fn engine() -> QueryEngine {
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        QueryEngine::new(Arc::new(cache), 1024 * 1024)
    }

    fn spec(kv: &[(&str, &str)]) -> QuerySpec {
        let pairs: Vec<(String, String)> = kv
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        QuerySpec::from_pairs(&pairs).unwrap()
    }

    #[test]
    fn warm_repeat_is_served_from_the_lru_without_recompute() {
        let engine = engine();
        let q = spec(&[("workload", "fft"), ("node", "7nm"), ("lanes", "8")]);
        let cold = engine.answer(&q).unwrap();
        let after_cold = engine.stats();
        assert_eq!(after_cold.computes, 1);
        assert_eq!(after_cold.cache.hits, 0);
        let warm = engine.answer(&q).unwrap();
        let after_warm = engine.stats();
        // The hit counter advances; the compute counter does not.
        assert_eq!(after_warm.cache.hits, 1);
        assert_eq!(after_warm.computes, 1);
        assert_eq!(cold, warm, "cached bytes must be identical");
    }

    #[test]
    fn a_shadowed_sweep_matches_the_registry_artifact_bytes() {
        let engine = engine();
        let q = spec(&[("kind", "sweep"), ("workload", "s3d")]);
        let body = engine.answer(&q).unwrap();
        let artifact = engine.artifacts.get("fig13").unwrap();
        let expected = format!("{}\n", artifact.json.pretty());
        assert_eq!(body.as_slice(), expected.as_bytes());
    }

    #[test]
    fn all_kinds_answer_and_are_valid_json() {
        let engine = engine();
        for kv in [
            vec![("workload", "aes"), ("heterogeneity", "true")],
            vec![("kind", "sweep"), ("workload", "fft")],
            vec![("kind", "projection"), ("domain", "bitcoin")],
            vec![
                ("kind", "projection"),
                ("domain", "gpu"),
                ("metric", "efficiency"),
                ("horizon", "2.5"),
            ],
            vec![("kind", "csr"), ("reported", "510"), ("physical", "307")],
            vec![
                ("kind", "csr"),
                ("reported", "510"),
                ("physical", "307"),
                ("physical_base", "1"),
            ],
        ] {
            let body = engine.answer(&spec(&kv)).unwrap();
            let text = String::from_utf8(body.as_ref().clone()).unwrap();
            let doc = Value::parse(text.trim_end()).unwrap();
            assert!(doc.is_object() || doc.is_array(), "{kv:?}");
        }
    }

    #[test]
    fn a_vacuous_horizon_surfaces_as_an_engine_error() {
        let engine = engine();
        // Shrinking the physical limit below the observed data leaves
        // nothing to extrapolate to.
        let q = spec(&[
            ("kind", "projection"),
            ("domain", "gpu"),
            ("horizon", "0.001"),
        ]);
        let err = engine.answer(&q).unwrap_err();
        assert!(matches!(err, QueryError::Engine(_)), "{err}");
        assert!(!err.is_retryable());
    }

    #[test]
    fn admission_budget_sheds_expensive_specs() {
        let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
        let engine = QueryEngine::with_budget(Arc::new(cache), 1024 * 1024, 8);
        // A sweep costs 64 units against a budget of 8: always shed.
        let q = spec(&[("kind", "sweep"), ("workload", "fft")]);
        let err = engine.answer(&q).unwrap_err();
        assert!(matches!(err, QueryError::Overloaded { .. }), "{err}");
        assert!(err.is_retryable());
        assert_eq!(engine.stats().shed, 1);
        // Cheap points still pass, and the guard releases the units.
        let p = spec(&[("workload", "fft")]);
        engine.answer(&p).unwrap();
        assert_eq!(engine.stats().in_flight, 0);
    }

    #[test]
    fn schema_lists_every_field_in_canonical_order() {
        let schema = QueryEngine::schema();
        let order: Vec<&str> = schema
            .get("field_order")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .filter_map(Value::as_str)
            .collect();
        assert_eq!(order, FIELDS);
        let fields = schema.get("fields").and_then(Value::as_array).unwrap();
        assert_eq!(fields.len(), FIELDS.len());
    }
}
