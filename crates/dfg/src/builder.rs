//! Acyclic-by-construction graph builder.

use crate::graph::{Dfg, Node, NodeId, NodeKind, Op};
use crate::{DfgError, Result};
use std::collections::HashSet;

/// Builds a [`Dfg`] incrementally. Operands must already exist when an
/// operation references them, so cycles cannot be expressed; `build`
/// performs the remaining structural checks (taxonomy, names, outputs).
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    tables: Vec<[u8; 256]>,
    errors: Vec<DfgError>,
}

impl DfgBuilder {
    /// Starts an empty graph called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            nodes: Vec::new(),
            tables: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Adds an input variable and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node {
            kind: NodeKind::Input(name.into()),
            operands: Vec::new(),
        })
    }

    /// Adds a computation vertex applying `op` to `operands`.
    ///
    /// Arity and operand-existence violations are recorded and reported by
    /// [`build`](Self::build); the returned id stays usable so call sites
    /// can be written straight-line.
    pub fn op(&mut self, op: Op, operands: &[NodeId]) -> NodeId {
        if operands.len() != op.arity() {
            self.errors.push(DfgError::ArityMismatch {
                op,
                given: operands.len(),
                required: op.arity(),
            });
        }
        for &o in operands {
            self.check_operand(o);
        }
        self.push(Node {
            kind: NodeKind::Compute(op),
            operands: operands.to_vec(),
        })
    }

    /// Convenience: a left-leaning reduction tree `op(op(a, b), c)...` over
    /// two or more values, or a `Copy` of a single value.
    pub fn reduce(&mut self, op: Op, values: &[NodeId]) -> NodeId {
        match values {
            [] => {
                self.errors.push(DfgError::ArityMismatch {
                    op,
                    given: 0,
                    required: op.arity(),
                });
                self.push(Node {
                    kind: NodeKind::Compute(Op::Copy),
                    operands: Vec::new(),
                })
            }
            [single] => self.op(Op::Copy, &[*single]),
            _ => {
                // Balanced tree: keeps the DFG depth logarithmic, matching
                // how a spatial reduction is actually specialized.
                let mut layer = values.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        match pair {
                            [a, b] => next.push(self.op(op, &[*a, *b])),
                            [a] => next.push(*a),
                            _ => unreachable!("chunks(2)"),
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Marks `source`'s value as the output variable `name`.
    pub fn output(&mut self, name: impl Into<String>, source: NodeId) -> NodeId {
        self.check_operand(source);
        self.push(Node {
            kind: NodeKind::Output(name.into()),
            operands: vec![source],
        })
    }

    /// Registers a 256-entry lookup table and returns the id to use with
    /// [`Op::Lut`].
    pub fn register_table(&mut self, table: [u8; 256]) -> u8 {
        self.tables.push(table);
        (self.tables.len() - 1) as u8
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns the first recorded construction error, or:
    /// * [`DfgError::NoOutputs`] if no output vertex exists,
    /// * [`DfgError::DuplicateName`] for repeated input or output names,
    /// * [`DfgError::TaxonomyViolation`] if an output vertex is consumed as
    ///   an operand.
    pub fn build(mut self) -> Result<Dfg> {
        if let Some(e) = self.errors.drain(..).next() {
            return Err(e);
        }
        let mut names = HashSet::new();
        let mut has_output = false;
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Input(name) | NodeKind::Output(name) => {
                    if !names.insert(name.clone()) {
                        return Err(DfgError::DuplicateName(name.clone()));
                    }
                    has_output |= matches!(node.kind, NodeKind::Output(_));
                }
                NodeKind::Compute(_) => {}
            }
            for &op in &node.operands {
                if matches!(self.nodes[op.0].kind, NodeKind::Output(_)) {
                    return Err(DfgError::TaxonomyViolation(
                        "output vertex used as an operand",
                    ));
                }
            }
        }
        if !has_output {
            return Err(DfgError::NoOutputs);
        }
        Ok(Dfg {
            name: self.name,
            nodes: self.nodes,
            tables: self.tables,
        })
    }

    fn check_operand(&mut self, id: NodeId) {
        if id.0 >= self.nodes.len() {
            self.errors.push(DfgError::UnknownNode(id.0));
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.op(Op::Add, &[x, y]);
        b.output("sum", s);
        let g = b.build().unwrap();
        assert_eq!(g.vertex_count(), 4);
    }

    #[test]
    fn arity_mismatch_reported_at_build() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let s = b.op(Op::Add, &[x]); // missing an operand
        b.output("o", s);
        assert!(matches!(
            b.build(),
            Err(DfgError::ArityMismatch {
                op: Op::Add,
                given: 1,
                required: 2
            })
        ));
    }

    #[test]
    fn forward_references_rejected() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let bogus = NodeId(99);
        let s = b.op(Op::Add, &[x, bogus]);
        b.output("o", s);
        assert!(matches!(b.build(), Err(DfgError::UnknownNode(99))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let _y = b.input("x");
        b.output("o", x);
        assert!(matches!(b.build(), Err(DfgError::DuplicateName(_))));
    }

    #[test]
    fn outputs_required() {
        let mut b = DfgBuilder::new("g");
        let _ = b.input("x");
        assert!(matches!(b.build(), Err(DfgError::NoOutputs)));
    }

    #[test]
    fn output_cannot_feed_compute() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let o = b.output("o", x);
        let s = b.op(Op::Neg, &[o]);
        b.output("o2", s);
        assert!(matches!(b.build(), Err(DfgError::TaxonomyViolation(_))));
    }

    #[test]
    fn reduce_builds_balanced_tree() {
        let mut b = DfgBuilder::new("g");
        let leaves: Vec<NodeId> = (0..8).map(|i| b.input(format!("x{i}"))).collect();
        let r = b.reduce(Op::Add, &leaves);
        b.output("sum", r);
        let g = b.build().unwrap();
        // 8 leaves -> 7 adds, depth 3 compute stages.
        assert_eq!(g.compute_ids().len(), 7);
        assert_eq!(g.stats().compute_stages, 3);
    }

    #[test]
    fn reduce_single_value_copies() {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let r = b.reduce(Op::Add, &[x]);
        b.output("o", r);
        let g = b.build().unwrap();
        assert_eq!(g.compute_ids().len(), 1);
    }

    #[test]
    fn reduce_empty_errors() {
        let mut b = DfgBuilder::new("g");
        let r = b.reduce(Op::Add, &[]);
        b.output("o", r);
        assert!(b.build().is_err());
    }

    #[test]
    fn len_tracks_nodes() {
        let mut b = DfgBuilder::new("g");
        assert!(b.is_empty());
        b.input("x");
        assert_eq!(b.len(), 1);
    }
}
