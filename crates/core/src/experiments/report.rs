//! The full per-domain verdict reports (the `report` target).

use accelwall_projection::Domain;

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;
use crate::report::DomainReport;

/// Domain reports — the full verdict per accelerated domain.
pub struct Report;

impl Experiment for Report {
    fn id(&self) -> &'static str {
        "report"
    }

    fn description(&self) -> &'static str {
        "full per-domain verdict reports"
    }

    fn deps(&self) -> &'static [&'static str] {
        // The verdicts cite both the headroom summary and the runway
        // numbers; schedule them first so the narrative reads top-down.
        &["wall", "beyond"]
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let reports = Domain::all()
            .iter()
            .map(|&d| DomainReport::generate(d))
            .collect::<std::result::Result<Vec<DomainReport>, _>>()?;
        let json = reports
            .iter()
            .map(|r| {
                Value::object([
                    ("domain", Value::from(r.domain.to_string())),
                    ("maturity", Value::from(r.maturity.to_string())),
                    (
                        "peak_gain",
                        Value::from(r.performance_series.peak_reported()),
                    ),
                    (
                        "peak_physical",
                        Value::from(r.performance_series.peak_physical()),
                    ),
                    (
                        "performance_headroom",
                        Value::object([
                            ("log", Value::from(r.performance_wall.further_log)),
                            ("linear", Value::from(r.performance_wall.further_linear)),
                        ]),
                    ),
                    (
                        "efficiency_headroom",
                        Value::object([
                            ("log", Value::from(r.efficiency_wall.further_log)),
                            ("linear", Value::from(r.efficiency_wall.further_linear)),
                        ]),
                    ),
                    (
                        "runway_years",
                        Value::object([
                            ("log", Value::from(r.trajectory.runway_years_log)),
                            ("linear", Value::from(r.trajectory.runway_years_linear)),
                        ]),
                    ),
                    (
                        "dominant_constraint",
                        Value::from(r.dominant_constraint().map(|c| c.parameter.to_string())),
                    ),
                    ("summary", Value::from(r.summary())),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Domain reports — the full verdict per accelerated domain"
        );
        outln!(text);
        for r in &reports {
            outln!(text, "{}", r.summary());
            outln!(text);
        }
        Ok(Artifact::new(json, text))
    }
}
