//! Bitcoin mining across CPU, GPU, FPGA, and ASIC platforms
//! (Figs. 1 and 9): the impact of the chip-platform layer.
//!
//! Miner rows are reconstructed from the mining-hardware wikis and vendor
//! datasheets the paper cites \[60\]–\[63\]. ASIC miners integrate wildly
//! different chip counts, so — as the paper argues — performance is
//! normalized *per chip area* (GH/s/mm²); efficiency is GH/J.

use crate::Result;
use accelwall_cmos::TechNode;
use accelwall_csr::CsrSeries;

/// The platform a miner is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// General-purpose CPU.
    Cpu,
    /// Graphics processor.
    Gpu,
    /// FPGA board.
    Fpga,
    /// Dedicated mining ASIC.
    Asic,
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Platform::Cpu => "CPU",
            Platform::Gpu => "GPU",
            Platform::Fpga => "FPGA",
            Platform::Asic => "ASIC",
        };
        f.write_str(s)
    }
}

/// One mining chip.
#[derive(Debug, Clone, PartialEq)]
pub struct Miner {
    /// Product / chip name.
    pub name: &'static str,
    /// Platform class.
    pub platform: Platform,
    /// Process node.
    pub node: TechNode,
    /// Hash rate per chip in GH/s.
    pub ghash_per_s: f64,
    /// Power per chip in watts.
    pub power_w: f64,
    /// Die area in mm².
    pub die_mm2: f64,
    /// Introduction date as (year, month) — the Fig. 1 x axis.
    pub intro: (u32, u32),
    /// Chip clock in GHz.
    pub freq_ghz: f64,
}

impl Miner {
    /// Performance per area in GH/s/mm² — the Fig. 1/9a metric.
    pub fn ghash_per_s_per_mm2(&self) -> f64 {
        self.ghash_per_s / self.die_mm2
    }

    /// Energy efficiency in GH/J — the Fig. 9b metric.
    pub fn ghash_per_joule(&self) -> f64 {
        self.ghash_per_s / self.power_w
    }
}

/// The miner dataset: the platform procession CPU → GPU → FPGA → ASIC,
/// then five generations of ASICs racing down the node ladder.
pub fn miners() -> Vec<Miner> {
    // (name, platform, node, GH/s, W, mm², (year, month), GHz)
    #[allow(clippy::type_complexity)] // literal datasheet rows
    let rows: [(&str, Platform, TechNode, f64, f64, f64, (u32, u32), f64); 14] = [
        (
            "Athlon 64 3400+",
            Platform::Cpu,
            TechNode::N130,
            0.0014,
            89.0,
            193.0,
            (2009, 1),
            2.4,
        ),
        (
            "Core i7-950",
            Platform::Cpu,
            TechNode::N45,
            0.02,
            130.0,
            263.0,
            (2010, 3),
            3.07,
        ),
        (
            "Radeon HD 5870",
            Platform::Gpu,
            TechNode::N40,
            0.40,
            188.0,
            334.0,
            (2010, 9),
            0.85,
        ),
        (
            "Radeon HD 6990 (per die)",
            Platform::Gpu,
            TechNode::N40,
            0.41,
            188.0,
            389.0,
            (2011, 4),
            0.83,
        ),
        (
            "Spartan-6 LX150",
            Platform::Fpga,
            TechNode::N45,
            0.10,
            6.8,
            220.0,
            (2011, 6),
            0.1,
        ),
        (
            "X6500 (dual LX150, per chip)",
            Platform::Fpga,
            TechNode::N45,
            0.2,
            8.5,
            220.0,
            (2011, 9),
            0.2,
        ),
        (
            "ASICMiner BE100",
            Platform::Asic,
            TechNode::N130,
            0.3,
            2.0,
            30.0,
            (2012, 12),
            0.3,
        ),
        (
            "Avalon A3256",
            Platform::Asic,
            TechNode::N110,
            0.282,
            1.2,
            22.0,
            (2013, 1),
            0.28,
        ),
        (
            "Bitfury gen1",
            Platform::Asic,
            TechNode::N55,
            1.56,
            1.9,
            14.0,
            (2013, 10),
            0.32,
        ),
        (
            "BM1380 (Antminer S1)",
            Platform::Asic,
            TechNode::N55,
            2.8,
            3.1,
            18.0,
            (2013, 11),
            0.35,
        ),
        (
            "BM1382 (Antminer S3)",
            Platform::Asic,
            TechNode::N28,
            11.2,
            11.0,
            20.0,
            (2014, 7),
            0.45,
        ),
        (
            "BM1384 (Antminer S5)",
            Platform::Asic,
            TechNode::N28,
            21.5,
            12.5,
            24.0,
            (2014, 12),
            0.5,
        ),
        (
            "BM1385 (Antminer S7)",
            Platform::Asic,
            TechNode::N28,
            32.5,
            13.2,
            26.0,
            (2015, 8),
            0.6,
        ),
        (
            "BM1387 (Antminer S9)",
            Platform::Asic,
            TechNode::N16,
            74.0,
            7.3,
            15.5,
            (2016, 6),
            0.65,
        ),
    ];
    rows.iter()
        .map(|&(name, platform, node, gh, w, mm2, intro, ghz)| Miner {
            name,
            platform,
            node,
            ghash_per_s: gh,
            power_w: w,
            die_mm2: mm2,
            intro,
            freq_ghz: ghz,
        })
        .collect()
}

/// The ASIC subset, chronological — the Fig. 1 series.
pub fn asic_miners() -> Vec<Miner> {
    miners()
        .into_iter()
        .filter(|m| m.platform == Platform::Asic)
        .collect()
}

/// Physical per-area throughput potential of a miner relative to a
/// baseline: transistor density × switching-speed potential of the node —
/// the paper's "transistor performance" (Fig. 1). Mining is embarrassingly
/// parallel fixed-function hashing, so hash rate per mm² tracks how much
/// silicon switches per second per unit area; 130 nm → 16 nm gives
/// (130/16)² × (speed ratio) ≈ 315x, the paper's 307x.
pub fn physical_per_area_gain(miner: &Miner, baseline: &Miner) -> f64 {
    (miner.node.density_rel() * miner.node.frequency_potential())
        / (baseline.node.density_rel() * baseline.node.frequency_potential())
}

/// Physical efficiency potential relative to a baseline: hashes per joule
/// scale with the reciprocal dynamic energy per switched gate.
pub fn physical_efficiency_gain(miner: &Miner, baseline: &Miner) -> f64 {
    baseline.node.dynamic_energy_rel() / miner.node.dynamic_energy_rel()
}

/// Fig. 1: the ASIC evolution series, normalized to the first (130 nm)
/// mining ASIC — performance per area, transistor performance, and CSR.
///
/// ```
/// let series = accelwall_studies::bitcoin::fig1_series()?;
/// // ~477x performance, ~315x of it transistors: CSR stalls near 1.5x.
/// let last = series.rows.last().unwrap();
/// assert!(last.csr < 2.0);
/// # Ok::<(), accelwall_studies::StudyError>(())
/// ```
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn fig1_series() -> Result<CsrSeries> {
    Ok(CsrSeries::new(scan_family(
        asic_miners(),
        Miner::ghash_per_s_per_mm2,
        physical_per_area_gain,
    ))?)
}

/// Scans one chip family across the `accelwall-par` pool: each row's
/// reported gain and physical potential against the family's first
/// (baseline) member. Rows land at their miner index, so the series
/// order matches the serial loop.
fn scan_family(
    family: Vec<Miner>,
    reported: fn(&Miner) -> f64,
    physical: fn(&Miner, &Miner) -> f64,
) -> Vec<(&'static str, f64, f64)> {
    accelwall_par::par_map(family.len(), move |i| {
        let (m, base) = (&family[i], &family[0]);
        (m.name, reported(m) / reported(base), physical(m, base))
    })
}

/// Fig. 9a: all platforms, performance per area vs. the CPU baseline.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn fig9_performance_series() -> Result<CsrSeries> {
    Ok(CsrSeries::new(scan_family(
        miners(),
        Miner::ghash_per_s_per_mm2,
        physical_per_area_gain,
    ))?)
}

/// Fig. 9b: all platforms, energy efficiency vs. the CPU baseline.
///
/// # Errors
///
/// Propagates CSR validation errors (impossible on the embedded dataset).
pub fn fig9_efficiency_series() -> Result<CsrSeries> {
    Ok(CsrSeries::new(scan_family(
        miners(),
        Miner::ghash_per_joule,
        physical_efficiency_gain,
    ))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_procession_is_chronological() {
        let all = miners();
        assert!(all.windows(2).all(|w| w[0].intro <= w[1].intro));
        assert_eq!(all[0].platform, Platform::Cpu);
        assert_eq!(all.last().unwrap().platform, Platform::Asic);
    }

    #[test]
    fn fig1_performance_improved_about_510x() {
        // Paper Fig. 1: ASIC perf/area improved 510x over the 130 nm
        // baseline ASIC.
        let s = fig1_series().unwrap();
        assert!(
            (350.0..700.0).contains(&s.peak_reported()),
            "peak {:.0}",
            s.peak_reported()
        );
    }

    #[test]
    fn fig1_transistor_performance_about_307x() {
        // Paper Fig. 1: "mainly due to a 307x improvement in transistor
        // performance."
        let s = fig1_series().unwrap();
        assert!(
            (230.0..400.0).contains(&s.peak_physical()),
            "physical {:.0}",
            s.peak_physical()
        );
    }

    #[test]
    fn fig1_csr_is_modest_and_stalls() {
        // Paper: CSR ~1.7x total and flat over the last two years.
        let s = fig1_series().unwrap();
        let csr_final = s.rows.last().unwrap().csr;
        assert!((1.0..2.6).contains(&csr_final), "final CSR {csr_final:.2}");
        // The 28 nm-era chips already reached comparable CSR.
        let csr_28nm_peak = s.rows[4..7].iter().map(|r| r.csr).fold(0.0, f64::max);
        assert!(
            csr_final < 1.6 * csr_28nm_peak,
            "CSR should not keep climbing: final {csr_final:.2} vs 28nm peak {csr_28nm_peak:.2}"
        );
    }

    #[test]
    fn asics_beat_cpus_by_five_to_six_orders_of_magnitude() {
        // Paper: "~600,000x compared to the baseline CPU miner."
        let s = fig9_performance_series().unwrap();
        assert!(
            (2e5..2e6).contains(&s.peak_reported()),
            "peak vs CPU {:.0}",
            s.peak_reported()
        );
    }

    #[test]
    fn asic_over_asic_specialization_return_is_about_2x() {
        // Paper: "specialization returns improve by about 2x across
        // ASICs."
        let asics = asic_miners();
        let base = &asics[0];
        let last = asics.last().unwrap();
        let reported = last.ghash_per_s_per_mm2() / base.ghash_per_s_per_mm2();
        let physical = physical_per_area_gain(last, base);
        let csr = reported / physical;
        assert!((1.0..3.0).contains(&csr), "ASIC CSR {csr:.2}");
    }

    #[test]
    fn platform_transitions_deliver_non_recurring_boosts() {
        // Paper insight: each platform jump (CPU->GPU->FPGA->ASIC) is a
        // one-time CSR leap.
        let s = fig9_performance_series().unwrap();
        let csr_of = |name: &str| s.rows.iter().find(|r| r.label.contains(name)).unwrap().csr;
        let cpu = csr_of("i7-950");
        let gpu = csr_of("5870");
        let asic = csr_of("S9");
        assert!(gpu > 3.0 * cpu, "GPU jump: {gpu:.1} vs {cpu:.1}");
        assert!(asic > 10.0 * gpu, "ASIC jump: {asic:.1} vs {gpu:.1}");
    }

    #[test]
    fn efficiency_shows_two_csr_regions() {
        // Fig. 9b: CSR improves within the early (130/110 nm) region and
        // within the modern (28/16 nm) region, with a decline between —
        // the 110 nm -> 28 nm sprint outpaced algorithmic innovation.
        let s = fig9_efficiency_series().unwrap();
        let csr_of = |name: &str| s.rows.iter().find(|r| r.label.contains(name)).unwrap().csr;
        let region1_peak = csr_of("Avalon").max(csr_of("BE100"));
        let region2_start = csr_of("S3");
        let region2_end = csr_of("S9");
        assert!(
            region2_start < region1_peak,
            "dip between regions: {region2_start:.1} !< {region1_peak:.1}"
        );
        assert!(
            region2_end > region2_start,
            "recovery within region 2: {region2_end:.1} !> {region2_start:.1}"
        );
    }

    #[test]
    fn per_chip_metrics_are_positive_and_sane() {
        for m in miners() {
            assert!(m.ghash_per_s_per_mm2() > 0.0);
            assert!(m.ghash_per_joule() > 0.0);
            assert!(m.die_mm2 > 5.0 && m.die_mm2 < 500.0);
        }
    }
}
