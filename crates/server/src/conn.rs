//! Per-connection state for the reactor: buffered reads, pipelined
//! sequencing, and vectored write-out.
//!
//! A [`Conn`] owns one nonblocking [`TcpStream`] and the pure state
//! machine around it; all *policy* (routing, fast-path lookups, pool
//! dispatch, timeouts, metrics) lives in the reactor. The lifecycle:
//!
//! ```text
//!            fill()                parse_next()
//! socket ──► read_buf ──► Request(seq=0,1,2,...) ──► reactor
//!                                                      │ compute (inline or pool)
//!            flush()               enqueue(seq)        ▼
//! socket ◄── write_queue ◄── (in seq order) ◄── parked out-of-order
//! ```
//!
//! Responses may complete out of order (a pipelined cache hit behind a
//! slow compute); `enqueue` parks them until their sequence number is
//! next, so write-out order always equals request order — the HTTP/1.1
//! pipelining contract. `flush` gathers several queued responses into
//! one `write_vectored` call, so a pipelined burst costs ~one syscall,
//! not two per response.

use std::collections::VecDeque;
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::Route;
use crate::respcache::CachedResponse;

/// Outstanding responses (in flight, parked, or queued) one connection
/// may accumulate before the reactor stops parsing more of its
/// pipeline; the read buffer then backs TCP flow control up to the
/// client.
pub(crate) const PIPELINE_CAP: usize = 64;

/// Read-buffer high-water mark: past this the reactor stops draining
/// the socket until the parser catches up.
pub(crate) const READ_BUF_CAP: usize = 256 * 1024;

/// Queued responses gathered into a single `write_vectored` call.
const WRITEV_BATCH: usize = 16;

/// The bytes of one response: rendered fresh, or shared out of the
/// pre-serialized response cache (zero copies on the warm path).
pub(crate) enum Payload {
    /// A response rendered for this request alone.
    Owned {
        /// Header block ending in `\r\n\r\n`.
        head: Vec<u8>,
        /// Body bytes.
        body: Vec<u8>,
    },
    /// A shared cache entry; `keep_alive` picks the header variant.
    Cached {
        /// The shared pre-serialized entry.
        entry: Arc<CachedResponse>,
        /// Which precomputed header block to send.
        keep_alive: bool,
    },
}

impl Payload {
    fn head(&self) -> &[u8] {
        match self {
            Payload::Owned { head, .. } => head,
            Payload::Cached { entry, keep_alive } => {
                if *keep_alive {
                    &entry.head_keep
                } else {
                    &entry.head_close
                }
            }
        }
    }

    fn body(&self) -> &[u8] {
        match self {
            Payload::Owned { body, .. } => body,
            Payload::Cached { entry, .. } => &entry.body,
        }
    }
}

/// One response staged for write-out.
pub(crate) struct Outgoing {
    pub payload: Payload,
    /// Close the connection once this response is fully flushed.
    pub close_after: bool,
    pub route: Route,
    pub status: u16,
    /// When the request was parsed; latency is observed at flush.
    pub started: Instant,
    head_off: usize,
    body_off: usize,
}

impl Outgoing {
    pub fn new(
        payload: Payload,
        close_after: bool,
        route: Route,
        status: u16,
        started: Instant,
    ) -> Outgoing {
        Outgoing {
            payload,
            close_after,
            route,
            status,
            started,
            head_off: 0,
            body_off: 0,
        }
    }

    fn remaining(&self) -> usize {
        (self.payload.head().len() - self.head_off) + (self.payload.body().len() - self.body_off)
    }
}

/// Metadata of a fully-flushed response, drained by the reactor for
/// metrics observation.
pub(crate) struct Flushed {
    pub route: Route,
    pub status: u16,
    pub started: Instant,
    pub close_after: bool,
}

/// What one `fill` pass over the socket did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillOutcome {
    /// New bytes landed in the read buffer.
    Progress,
    /// Nothing available right now (`WouldBlock`) or buffer at cap.
    Idle,
}

/// One client connection's full state; see the module docs.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub read_buf: Vec<u8>,
    /// Requests parsed off this connection so far (keep-alive reuse is
    /// `requests_parsed > 1`).
    pub requests_parsed: u64,
    /// Requests handed to the pool and not yet completed.
    pub in_flight: usize,
    /// Advanced by any read or write progress; the reactor's idle and
    /// stall timeouts measure from here.
    pub last_activity: Instant,
    /// No further requests will be parsed (close requested or parse
    /// error); pending responses still flush.
    pub stop_parsing: bool,
    /// The sequence number whose response closes the connection
    /// (`Connection: close` honored in pipeline order).
    pub close_at: Option<u64>,
    /// The client half-closed; finish flushing, then close.
    pub read_closed: bool,
    /// Fatal socket error or abort: reap without further I/O.
    pub dead: bool,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Sequence number the write queue admits next.
    next_write: u64,
    /// Completed responses waiting for earlier sequence numbers.
    parked: Vec<(u64, Outgoing)>,
    /// In-order responses being flushed.
    write_queue: VecDeque<Outgoing>,
    /// Fully-flushed response metadata awaiting metrics observation.
    flushed: Vec<Flushed>,
}

impl Conn {
    /// Adopts an accepted stream: nonblocking (the reactor never waits
    /// on one socket) and `TCP_NODELAY` (keep-alive round trips must
    /// not sit out a Nagle delay).
    pub fn new(stream: TcpStream, now: Instant) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            read_buf: Vec::new(),
            requests_parsed: 0,
            in_flight: 0,
            last_activity: now,
            stop_parsing: false,
            close_at: None,
            read_closed: false,
            dead: false,
            next_seq: 0,
            next_write: 0,
            parked: Vec::new(),
            write_queue: VecDeque::new(),
            flushed: Vec::new(),
        })
    }

    /// Responses not yet fully flushed (pool, parked, or queued).
    pub fn outstanding(&self) -> usize {
        self.in_flight + self.parked.len() + self.write_queue.len()
    }

    /// Whether nothing is buffered or pending: the connection is parked
    /// between requests (the idle-timeout state).
    pub fn is_idle(&self) -> bool {
        self.outstanding() == 0 && self.read_buf.is_empty()
    }

    /// Reserves the next request sequence number (also used for
    /// synthesized error responses, which consume a slot in the
    /// pipeline order like any request).
    pub fn reserve_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Drains the socket into the read buffer until `WouldBlock`, EOF,
    /// or the buffer cap.
    pub fn fill(&mut self, scratch: &mut [u8], now: Instant) -> FillOutcome {
        let mut outcome = FillOutcome::Idle;
        while !self.read_closed && !self.dead && self.read_buf.len() < READ_BUF_CAP {
            match self.stream.read(scratch) {
                Ok(0) => self.read_closed = true,
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.last_activity = now;
                    outcome = FillOutcome::Progress;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => self.dead = true,
            }
        }
        outcome
    }

    /// Stages one completed response. If `seq` is the next in pipeline
    /// order it enters the write queue (pulling any parked successors
    /// in behind it); otherwise it parks.
    pub fn enqueue(&mut self, seq: u64, outgoing: Outgoing) {
        if seq == self.next_write {
            self.write_queue.push_back(outgoing);
            self.next_write += 1;
            while let Some(i) = self.parked.iter().position(|(s, _)| *s == self.next_write) {
                let (_, next) = self.parked.swap_remove(i);
                self.write_queue.push_back(next);
                self.next_write += 1;
            }
        } else {
            self.parked.push((seq, outgoing));
        }
    }

    /// Flushes the write queue with gathered vectored writes until it
    /// empties or the socket stops accepting. Returns whether any bytes
    /// moved; fully-written responses land in the [`Flushed`] drain.
    pub fn flush(&mut self, now: Instant) -> bool {
        let mut progress = false;
        while !self.write_queue.is_empty() && !self.dead {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(8);
            for out in self.write_queue.iter().take(WRITEV_BATCH) {
                let head = &out.payload.head()[out.head_off..];
                if !head.is_empty() {
                    slices.push(IoSlice::new(head));
                }
                let body = &out.payload.body()[out.body_off..];
                if !body.is_empty() {
                    slices.push(IoSlice::new(body));
                }
            }
            let written = if slices.is_empty() {
                0 // zero-remaining fronts: just pop them below
            } else {
                match self.stream.write_vectored(&slices) {
                    Ok(0) => {
                        self.dead = true;
                        break;
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        break;
                    }
                }
            };
            if written > 0 {
                progress = true;
                self.last_activity = now;
            }
            self.advance(written);
        }
        progress
    }

    /// Distributes `n` written bytes across the queue front, retiring
    /// fully-flushed responses into the `Flushed` drain.
    fn advance(&mut self, mut n: usize) {
        while let Some(front) = self.write_queue.front_mut() {
            let head_left = front.payload.head().len() - front.head_off;
            let take = head_left.min(n);
            front.head_off += take;
            n -= take;
            let body_left = front.payload.body().len() - front.body_off;
            let take = body_left.min(n);
            front.body_off += take;
            n -= take;
            if front.remaining() > 0 {
                break;
            }
            // lint:allow(no-panic-paths): front_mut above proved the queue is non-empty
            let done = self.write_queue.pop_front().unwrap();
            self.flushed.push(Flushed {
                route: done.route,
                status: done.status,
                started: done.started,
                close_after: done.close_after,
            });
        }
    }

    /// Drains the fully-flushed response metadata (for metrics, and for
    /// the reactor's close-after-flush decision).
    pub fn take_flushed(&mut self) -> Vec<Flushed> {
        std::mem::take(&mut self.flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn owned(tag: &str, close_after: bool) -> Outgoing {
        Outgoing::new(
            Payload::Owned {
                head: format!("H{tag}|").into_bytes(),
                body: format!("B{tag};").into_bytes(),
            },
            close_after,
            Route::Other,
            200,
            Instant::now(),
        )
    }

    #[test]
    fn out_of_order_completions_flush_in_request_order() {
        let (client, server) = pair();
        let mut conn = Conn::new(server, Instant::now()).unwrap();
        let s0 = conn.reserve_seq();
        let s1 = conn.reserve_seq();
        let s2 = conn.reserve_seq();
        // Completions arrive 2, 0, 1: nothing can flush until 0 lands,
        // and the wire order must still be 0, 1, 2.
        conn.enqueue(s2, owned("2", false));
        assert!(!conn.flush(Instant::now()), "seq 2 must wait for 0 and 1");
        conn.enqueue(s0, owned("0", false));
        conn.enqueue(s1, owned("1", false));
        assert!(conn.flush(Instant::now()));
        assert_eq!(conn.take_flushed().len(), 3);
        drop(conn);
        let mut client = client;
        let mut got = String::new();
        client.read_to_string(&mut got).unwrap();
        assert_eq!(got, "H0|B0;H1|B1;H2|B2;");
    }

    #[test]
    fn fill_buffers_bytes_and_sees_eof() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, Instant::now()).unwrap();
        let mut scratch = [0u8; 1024];
        assert_eq!(
            conn.fill(&mut scratch, Instant::now()),
            FillOutcome::Idle,
            "nothing sent yet"
        );
        client.write_all(b"GET /").unwrap();
        // Nonblocking read races the loopback; poll briefly.
        let mut got = FillOutcome::Idle;
        for _ in 0..200 {
            got = conn.fill(&mut scratch, Instant::now());
            if got == FillOutcome::Progress {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(got, FillOutcome::Progress);
        assert_eq!(conn.read_buf, b"GET /");
        drop(client);
        for _ in 0..200 {
            conn.fill(&mut scratch, Instant::now());
            if conn.read_closed {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(conn.read_closed, "client FIN must be observed");
        assert!(!conn.dead, "EOF is not an error");
    }

    #[test]
    fn close_after_is_reported_through_the_flush_drain() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server, Instant::now()).unwrap();
        let seq = conn.reserve_seq();
        conn.enqueue(seq, owned("x", true));
        assert!(conn.flush(Instant::now()));
        let flushed = conn.take_flushed();
        assert_eq!(flushed.len(), 1);
        assert!(flushed[0].close_after);
        assert!(conn.is_idle());
    }
}
