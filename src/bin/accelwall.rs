//! `accelwall` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! accelwall <target> [--json]
//! accelwall all [--json]
//! accelwall dot [WORKLOAD] [--json]
//! accelwall list
//! ```
//!
//! The target roster is owned by [`Registry::paper`]; this binary is a
//! thin driver around it. `list` prints every registered target with its
//! description, `all` runs the whole registry in dependency order with
//! independent experiments executing in parallel, and `--json` swaps the
//! text rendering for the experiment's JSON artifact. With `all`,
//! `--json` emits one JSON document keyed by experiment id.

use accelerator_wall::error::Error;
use accelerator_wall::experiments::dfg::dot_artifact;
use accelerator_wall::json::Value;
use accelerator_wall::prelude::{Ctx, Registry};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut positional = args.iter().filter(|a| !a.starts_with("--"));
    let target = positional.next().cloned();
    let operand = positional.next().cloned();
    let registry = Registry::paper();
    match target.as_deref() {
        None | Some("list") => {
            println!("regeneration targets:");
            for e in registry.experiments() {
                println!("  {:<12} {}", e.id(), e.description());
            }
            println!("  {:<12} run every target above", "all");
            ExitCode::SUCCESS
        }
        Some("all") => run_all(&registry, json),
        Some("dot") => {
            // `dot` keeps its positional operand: any Table IV
            // abbreviation, defaulting to the Fig. 11 example graph.
            let which = operand.unwrap_or_else(|| "fig11".to_string());
            match dot_artifact(&which) {
                Ok(artifact) => {
                    if json {
                        println!("{}", artifact.json.pretty());
                    } else {
                        print!("{}", artifact.text);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("dot failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some(t) => match registry.get(t) {
            Ok(experiment) => match experiment.run(&Ctx::new()) {
                Ok(artifact) => {
                    if json {
                        println!("{}", artifact.json.pretty());
                    } else {
                        print!("{}", artifact.text);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{t} failed: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e @ Error::UnknownExperiment { .. }) => {
                eprintln!("{e}");
                eprintln!("run `accelwall list` for descriptions");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
    }
}

/// Runs the whole registry against one shared memoizing [`Ctx`]:
/// independent experiments execute concurrently, and every shared input
/// (corpus, potential model, per-workload sweeps) is computed once.
fn run_all(registry: &Registry, json: bool) -> ExitCode {
    let ctx = Ctx::new();
    let results = match registry.run_all(&ctx) {
        Ok(results) => results,
        Err(e) => {
            eprintln!("scheduling failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    if json {
        let doc = Value::object(results.iter().map(|(id, r)| {
            let v = match r {
                Ok(artifact) => artifact.json.clone(),
                Err(e) => {
                    failed = true;
                    Value::object([("error", Value::from(e.to_string()))])
                }
            };
            (*id, v)
        }));
        println!("{}", doc.pretty());
    } else {
        for (id, r) in &results {
            println!("=== {id} ===");
            match r {
                Ok(artifact) => print!("{}", artifact.text),
                Err(e) => {
                    failed = true;
                    eprintln!("{id} failed: {e}");
                }
            }
            println!();
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
