//! RBM: restricted Boltzmann machine inference (CortexSuite).
//!
//! One visible-to-hidden pass: `h_j = σ(Σ_i v_i · w_ij + bias_j)` — a dense
//! matrix-vector product per hidden unit followed by the logistic
//! activation, the paper's example of an algorithm-specific functional unit
//! (computation heterogeneity).

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// Builds the RBM hidden-layer inference DFG for `visible` inputs
/// (`v{i}`), `hidden` units with weights `w{i}_{j}` and biases `b{j}`;
/// outputs the activations `h{j}`.
///
/// # Panics
///
/// Panics if either layer is empty.
#[allow(clippy::needless_range_loop)] // i/j index the weight matrix
pub fn build(visible: usize, hidden: usize) -> Dfg {
    assert!(visible > 0 && hidden > 0, "RBM layers must be non-empty");
    let mut b = DfgBuilder::new(format!("rbm_v{visible}_h{hidden}"));
    let v: Vec<NodeId> = (0..visible).map(|i| b.input(format!("v{i}"))).collect();
    for j in 0..hidden {
        let prods: Vec<NodeId> = v
            .iter()
            .enumerate()
            .map(|(i, &vi)| {
                let w = b.input(format!("w{i}_{j}"));
                b.op(Op::Mul, &[vi, w])
            })
            .collect();
        let dot = b.reduce(Op::Add, &prods);
        let bias = b.input(format!("b{j}"));
        let pre = b.op(Op::Add, &[dot, bias]);
        let act = b.op(Op::Sigmoid, &[pre]);
        b.output(format!("h{j}"), act);
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("rbm graph is structurally valid")
}

/// Reference hidden-layer inference; `weights[i][j]` couples visible `i` to
/// hidden `j`.
#[allow(clippy::needless_range_loop)] // i/j index the weight matrix
pub fn rbm_reference(v: &[f64], weights: &[Vec<f64>], biases: &[f64]) -> Vec<f64> {
    (0..biases.len())
        .map(|j| {
            let pre: f64 = v
                .iter()
                .enumerate()
                .map(|(i, vi)| vi * weights[i][j])
                .sum::<f64>()
                + biases[j];
            1.0 / (1.0 + (-pre).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn matches_reference_inference() {
        let (nv, nh) = (6, 4);
        let g = build(nv, nh);
        let v: Vec<f64> = (0..nv).map(|i| (i as f64 * 0.4).sin()).collect();
        let weights: Vec<Vec<f64>> = (0..nv)
            .map(|i| {
                (0..nh)
                    .map(|j| ((i * 3 + j) % 7) as f64 * 0.2 - 0.6)
                    .collect()
            })
            .collect();
        let biases: Vec<f64> = (0..nh).map(|j| j as f64 * 0.1 - 0.2).collect();
        let mut inputs = HashMap::new();
        for (i, &vi) in v.iter().enumerate() {
            inputs.insert(format!("v{i}"), vi);
        }
        for (i, row) in weights.iter().enumerate() {
            for (j, &wij) in row.iter().enumerate() {
                inputs.insert(format!("w{i}_{j}"), wij);
            }
        }
        for (j, &bj) in biases.iter().enumerate() {
            inputs.insert(format!("b{j}"), bj);
        }
        let out = g.evaluate(&inputs).unwrap();
        let h = rbm_reference(&v, &weights, &biases);
        for (j, hj) in h.iter().enumerate() {
            assert!((out[&format!("h{j}")] - hj).abs() < 1e-12, "unit {j}");
            assert!((0.0..=1.0).contains(&out[&format!("h{j}")]));
        }
    }

    #[test]
    fn hidden_units_are_independent_lanes() {
        let g = build(12, 8);
        let s = g.stats();
        assert_eq!(s.outputs, 8);
        // All 12*8 multiplies fire in the first compute stage (stage 0 is
        // the input vertices).
        assert_eq!(g.stages()[1].len(), 96);
    }

    #[test]
    fn uses_sigmoid_units() {
        let g = build(3, 2);
        let sigmoids = g
            .compute_ids()
            .iter()
            .filter(|&&id| {
                matches!(
                    g.node(id).kind,
                    accelwall_dfg::NodeKind::Compute(Op::Sigmoid)
                )
            })
            .count();
        assert_eq!(sigmoids, 2);
    }
}
