//! The functional-unit library: per-operation latency, energy, and area at
//! the 45 nm / 32-bit / 1 GHz reference point.
//!
//! Values are calibrated to the published energy-per-operation tables the
//! paper builds on (Galal & Horowitz for floating-point datapaths, the
//! Aladdin FU models for the rest): single-cycle integer ALU ops around
//! half a picojoule, multipliers a handful of picojoules and a few cycles,
//! iterative divide/sqrt an order of magnitude above that, and SRAM-backed
//! table lookups around a picojoule per access.

use accelwall_dfg::Op;

/// Static cost parameters of one functional-unit class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuCost {
    /// Latency in cycles at the reference clock (1 GHz, 45 nm, 32-bit).
    pub latency_cycles: u32,
    /// Dynamic energy per operation in picojoules at the reference point.
    pub energy_pj: f64,
    /// Area in normalized units (1.0 = one 32-bit adder) — the basis of
    /// the leakage model.
    pub area_units: f64,
    /// Whether the unit is a single-cycle "simple" op eligible for
    /// heterogeneous fusion into chains.
    pub fusible: bool,
}

/// The cost entry for an operation.
pub fn cost(op: Op) -> FuCost {
    match op {
        // Single-cycle integer/logic fabric.
        Op::Add | Op::Sub | Op::Min | Op::Max | Op::Abs | Op::Neg => FuCost {
            latency_cycles: 1,
            energy_pj: 0.5,
            area_units: 1.0,
            fusible: true,
        },
        Op::And | Op::Or | Op::Xor | Op::Not | Op::Shl | Op::Shr => FuCost {
            latency_cycles: 1,
            energy_pj: 0.15,
            area_units: 0.4,
            fusible: true,
        },
        Op::CmpLt | Op::CmpEq | Op::Select | Op::Copy => FuCost {
            latency_cycles: 1,
            energy_pj: 0.3,
            area_units: 0.6,
            fusible: true,
        },
        // Pipelined multiplier.
        Op::Mul => FuCost {
            latency_cycles: 3,
            energy_pj: 3.5,
            area_units: 6.0,
            fusible: false,
        },
        // Iterative units.
        Op::Div | Op::Mod => FuCost {
            latency_cycles: 12,
            energy_pj: 8.0,
            area_units: 8.0,
            fusible: false,
        },
        Op::Sqrt => FuCost {
            latency_cycles: 12,
            energy_pj: 7.0,
            area_units: 7.0,
            fusible: false,
        },
        // Algorithm-specific activation unit (piecewise-linear sigmoid).
        Op::Sigmoid => FuCost {
            latency_cycles: 4,
            energy_pj: 4.0,
            area_units: 5.0,
            fusible: false,
        },
        // SRAM-backed table lookup.
        Op::Lut { .. } => FuCost {
            latency_cycles: 1,
            energy_pj: 1.0,
            area_units: 3.0,
            fusible: false,
        },
    }
}

/// Energy of one scratchpad/register-file access at the reference point
/// (used for loading inputs and storing outputs), in picojoules.
pub const ACCESS_ENERGY_PJ: f64 = 1.2;

/// Area of one scratchpad word at the reference point, in adder units.
pub const SRAM_WORD_AREA_UNITS: f64 = 0.5;

/// Leakage power per area unit at the 45 nm reference, in microwatts.
pub const LEAK_UW_PER_AREA_UNIT: f64 = 2.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ops_are_single_cycle_and_fusible() {
        for op in [Op::Add, Op::Xor, Op::Min, Op::Select] {
            let c = cost(op);
            assert_eq!(c.latency_cycles, 1, "{op:?}");
            assert!(c.fusible, "{op:?}");
        }
    }

    #[test]
    fn complex_ops_cost_more() {
        let add = cost(Op::Add);
        for op in [Op::Mul, Op::Div, Op::Sqrt, Op::Sigmoid] {
            let c = cost(op);
            assert!(c.latency_cycles > add.latency_cycles, "{op:?}");
            assert!(c.energy_pj > add.energy_pj, "{op:?}");
            assert!(!c.fusible, "{op:?}");
        }
    }

    #[test]
    fn energy_ordering_matches_hardware_intuition() {
        // logic < alu < lut < mul < div
        assert!(cost(Op::Xor).energy_pj < cost(Op::Add).energy_pj);
        assert!(cost(Op::Add).energy_pj < cost(Op::Lut { table: 0 }).energy_pj);
        assert!(cost(Op::Lut { table: 0 }).energy_pj < cost(Op::Mul).energy_pj);
        assert!(cost(Op::Mul).energy_pj < cost(Op::Div).energy_pj);
    }
}
