//! Integration tests of the `accelwall-par` compute pool: parallel
//! results ordered exactly like the serial loop, experiment panics
//! surfacing as [`Error::ExperimentPanicked`] through the artifact
//! cache's contained compute threads, thread count never leaking into
//! artifact bytes (`accelwall all --json` is byte-identical at 1 and 8
//! threads), and `--threads` observably pinning the served pool size.

use accelerator_wall::json::Value;
use accelerator_wall::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::Duration;

#[test]
fn par_map_matches_the_serial_loop_at_integration_scale() {
    // A mapping heavy enough to fan out across every worker, with a
    // value that would expose any index shuffling or chunk misplacement.
    let f = |i: usize| (i as f64).sqrt().mul_add(i as f64, 1.0);
    let serial: Vec<f64> = (0..10_000).map(f).collect();
    let parallel = accelwall_par::par_map(10_000, f);
    assert_eq!(parallel, serial);

    let chunked =
        accelwall_par::par_map_reduce(10_000, 64, move |r| r.map(f).sum::<f64>(), |a, b| a + b);
    // The tree reduction is deterministic, not just close: same chunk
    // boundaries, same fold order, every run.
    let again =
        accelwall_par::par_map_reduce(10_000, 64, move |r| r.map(f).sum::<f64>(), |a, b| a + b);
    assert_eq!(chunked.map(f64::to_bits), again.map(f64::to_bits));
}

#[test]
fn a_panicking_experiment_surfaces_as_experiment_panicked_through_the_cache() {
    // Arm a one-shot panic at the fig3a compute site, then request it
    // through the cache. The attempt runs on a shared `accelwall-par`
    // carrier thread; containment must still hold there: the requester
    // gets a typed error, the panic is counted, and nothing else dies.
    accelwall_faults::arm(accelwall_faults::FaultPlan::parse("fig3a:panic:1").expect("valid spec"))
        .expect("plan arms");
    let cache = ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()));
    match cache.get("fig3a") {
        Err(Error::ExperimentPanicked { id }) => assert_eq!(id, "fig3a"),
        other => panic!("expected ExperimentPanicked, got {other:?}"),
    }
    assert_eq!(cache.stats().panics_contained, 1);
    // The pool (and the whole process) survived the contained panic.
    let alive = accelwall_par::par_map(100, |i| i * 2);
    assert_eq!(alive[99], 198);
}

#[test]
fn all_json_is_byte_identical_across_thread_counts() {
    // The determinism contract of the whole pipeline: chunked RNG
    // streams, fixed-chunk regression sums, and index-placed map results
    // mean thread count can never leak into artifact bytes. One serial
    // run (env pinned to 1) against one parallel run (flag pinned to 8).
    let serial = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["all", "--json"])
        .env(accelwall_par::THREADS_ENV, "1")
        .output()
        .expect("serial all runs");
    assert!(serial.status.success(), "serial all failed");
    let parallel = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(["all", "--json", "--threads", "8"])
        .env_remove(accelwall_par::THREADS_ENV)
        .output()
        .expect("parallel all runs");
    assert!(parallel.status.success(), "parallel all failed");
    assert!(
        serial.stdout == parallel.stdout,
        "all --json bytes differ between 1 and 8 threads"
    );
    // And the document is real JSON with every roster target present.
    let doc = Value::parse(&String::from_utf8_lossy(&serial.stdout)).expect("valid JSON");
    for id in Registry::paper().ids() {
        assert!(doc.get(id).is_some(), "{id} missing from all --json");
    }
}

#[test]
fn serve_reports_the_pinned_pool_size() {
    // `serve --threads 3` must reach the pool before anything starts it:
    // /metrics then gauges 3 - 1 = 2 workers (the submitting thread is
    // the third participant).
    let mut child = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--threads",
            "3",
        ])
        .env_remove(accelwall_par::THREADS_ENV)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut stdout = BufReader::new(stdout);
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("an announcement line");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();
    let metrics = get(&addr, "/metrics");
    let workers_line = metrics
        .lines()
        .find(|l| l.starts_with("accelwall_par_workers "))
        .unwrap_or_else(|| panic!("accelwall_par_workers missing in:\n{metrics}"));
    assert_eq!(workers_line, "accelwall_par_workers 2");
    assert!(metrics.contains("accelwall_par_jobs_total "));
    assert!(metrics.contains("accelwall_par_steals_total "));
    let drain = request(&addr, "POST", "/shutdown");
    assert_eq!(drain, "draining\n");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited {status:?}");
}

fn get(addr: &str, path: &str) -> String {
    request(addr, "GET", path)
}

fn request(addr: &str, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_mins(1)))
        .unwrap();
    stream
        .write_all(format!("{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}
