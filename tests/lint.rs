//! End-to-end tests of `accelwall lint`: the shipped workspace must be
//! clean (this is the same gate CI runs), `--json` must round-trip
//! through `core::json` with the documented keys and the full rule
//! roster, and a seeded fixture workspace with one violation per rule
//! must fail with editor-clickable `file:line` findings.

use accelerator_wall::json::Value;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn run_in(dir: &Path, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn the_shipped_workspace_is_clean() {
    let (ok, stdout, stderr) = run_in(&repo_root(), &["lint"]);
    assert!(ok, "lint found problems:\n{stdout}{stderr}");
    assert!(
        stdout.contains("lint clean"),
        "unexpected output:\n{stdout}"
    );
    assert!(stdout.contains("0 findings"));
}

#[test]
fn lint_works_from_a_subdirectory() {
    // Workspace discovery walks upward, so the gate holds from anywhere
    // inside the checkout.
    let (ok, stdout, _) = run_in(&repo_root().join("crates/stats/src"), &["lint"]);
    assert!(ok, "lint from subdirectory failed:\n{stdout}");
}

#[test]
fn json_report_round_trips_with_the_rule_roster() {
    let (ok, stdout, _) = run_in(&repo_root(), &["lint", "--json"]);
    assert!(ok);
    let doc = Value::parse(&stdout).unwrap_or_else(|e| panic!("{e}\n{stdout}"));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(true));
    assert_eq!(doc.get("finding_count").and_then(Value::as_f64), Some(0.0));
    assert!(doc.get("files_scanned").and_then(Value::as_f64).unwrap() > 50.0);
    let rules: Vec<&str> = doc
        .get("rules")
        .and_then(Value::as_array)
        .expect("rules array")
        .iter()
        .map(|r| r.get("name").and_then(Value::as_str).expect("rule name"))
        .collect();
    assert_eq!(
        rules,
        [
            "no-panic-paths",
            "dep-free",
            "registry-sync",
            "float-hygiene",
            "no-exit-in-lib",
            "doc-sync",
            "fault-sites",
        ]
    );
    for rule in doc.get("rules").and_then(Value::as_array).unwrap() {
        assert!(!rule
            .get("description")
            .and_then(Value::as_str)
            .unwrap()
            .is_empty());
    }
    assert!(doc
        .get("findings")
        .and_then(Value::as_array)
        .expect("findings array")
        .is_empty());
}

/// A throwaway workspace under the target dir (std-only: no tempfile
/// crate), removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = repo_root()
            .join("target/lint-fixtures")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("fixture dirs");
        fs::write(path, content).expect("fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn seeded_violations_fail_with_file_line_findings() {
    let fix = Fixture::new("seeded");
    fix.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fix.write(
        "crates/app/Cargo.toml",
        "[package]\nname = \"app\"\n\n[dependencies]\nserde = \"1.0\"\n",
    );
    fix.write(
        "crates/app/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n\
         pub fn g() {\n    std::process::exit(3);\n}\n\
         // lint:allow(no-panic-paths)\n\
         pub fn h(y: Option<u32>) -> u32 {\n    y.expect(\"why\")\n}\n",
    );
    fix.write(
        "crates/stats/src/lib.rs",
        "pub fn near_zero(x: f64) -> bool {\n    x == 0.0\n}\n",
    );
    let (ok, stdout, _) = run_in(&fix.root, &["lint"]);
    assert!(!ok, "seeded fixture unexpectedly clean:\n{stdout}");
    // Editor-clickable path:line:col anchors, one per seeded violation.
    assert!(stdout.contains("crates/app/src/lib.rs:2:"), "{stdout}");
    assert!(stdout.contains("[no-panic-paths]"), "{stdout}");
    assert!(stdout.contains("crates/app/src/lib.rs:5:"), "{stdout}");
    assert!(stdout.contains("[no-exit-in-lib]"), "{stdout}");
    assert!(stdout.contains("crates/app/Cargo.toml:5:"), "{stdout}");
    assert!(
        stdout.contains("[dep-free]") && stdout.contains("serde"),
        "{stdout}"
    );
    assert!(stdout.contains("crates/stats/src/lib.rs:2:"), "{stdout}");
    assert!(stdout.contains("[float-hygiene]"), "{stdout}");
    // The justification-free allow is audited, and the violation it
    // failed to justify still counts.
    assert!(stdout.contains("[lint-allow]"), "{stdout}");
    assert!(stdout.contains("crates/app/src/lib.rs:9:"), "{stdout}");
    assert!(stdout.contains("lint failed:"), "{stdout}");

    let (ok, stdout, _) = run_in(&fix.root, &["lint", "--json"]);
    assert!(!ok);
    let doc = Value::parse(&stdout).unwrap_or_else(|e| panic!("{e}\n{stdout}"));
    assert_eq!(doc.get("clean").and_then(Value::as_bool), Some(false));
    let findings = doc.get("findings").and_then(Value::as_array).unwrap();
    assert_eq!(
        findings.len() as f64,
        doc.get("finding_count").and_then(Value::as_f64).unwrap()
    );
    assert!(findings.iter().any(|f| {
        f.get("rule").and_then(Value::as_str) == Some("no-panic-paths")
            && f.get("path").and_then(Value::as_str) == Some("crates/app/src/lib.rs")
            && f.get("line").and_then(Value::as_f64) == Some(2.0)
    }));
}

#[test]
fn justified_allows_suppress_and_test_code_is_exempt() {
    let fix = Fixture::new("allowed");
    fix.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    fix.write("crates/app/Cargo.toml", "[package]\nname = \"app\"\n");
    fix.write(
        "crates/app/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 {\n\
         \x20   // lint:allow(no-panic-paths): provably Some in every caller\n\
         \x20   x.unwrap()\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() {\n\
         \x20       None::<u32>.unwrap();\n\
         \x20   }\n\
         }\n",
    );
    fix.write(
        "crates/app/tests/integration.rs",
        "#[test]\nfn t() {\n    std::fs::read(\"x\").unwrap();\n}\n",
    );
    let (ok, stdout, stderr) = run_in(&fix.root, &["lint"]);
    assert!(ok, "expected clean:\n{stdout}{stderr}");
}

#[test]
fn lint_rejects_flags_of_other_subcommands() {
    let (ok, _, stderr) = run_in(&repo_root(), &["lint", "--addr", "0:0"]);
    assert!(!ok);
    assert!(stderr.contains("--addr"), "{stderr}");
    let (ok, _, stderr) = run_in(&repo_root(), &["lint", "extra"]);
    assert!(!ok);
    assert!(stderr.contains("no operand"), "{stderr}");
}
