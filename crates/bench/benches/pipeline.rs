//! Serial-versus-parallel baseline for the whole compute pipeline.
//!
//! The `accelwall-par` pool freezes its size the first time any kernel
//! touches it, so one process cannot honestly time both configurations.
//! This bench therefore re-executes itself: the parent spawns two child
//! copies of this binary — one pinned to `ACCELWALL_THREADS=1`, one to
//! `ACCELWALL_THREADS=4` — and each child times the four accelerated
//! kernels cold plus a full `accelwall all` replica, reporting one flat
//! JSON line the parent folds into the final document.
//!
//! Measured per configuration:
//!
//! 1. **cold `all`** — `Registry::paper().run_all` on a fresh `Ctx`
//!    (the number the `--threads` flag exists to improve);
//! 2. **corpus** — `CorpusSpec::paper_scale().generate()`, the chunked
//!    deterministic RNG streams;
//! 3. **fit** — the log-log regressions over the generated corpus;
//! 4. **sweep** — one workload's design-space sweep on the paper grid
//!    (the hoisted bytecode path);
//! 5. **sched** — the list scheduler over the lowered program;
//! 6. **interp** — the bytecode register-machine interpreter;
//! 7. **sensitivity** — the ±20 % wall-sensitivity grid, every domain.
//!
//! The output also carries a `quick_*` section so CI can re-measure two
//! machine-portable ratios in seconds: the serial/parallel cold-`all`
//! ratio (coarse sweep space) and the per-point-vs-hoisted sweep-kernel
//! ratio on the full Table III grid. The `bench-smoke` job fails when
//! either regresses more than 25 % against the committed baseline.
//! Speedups are ratios of same-machine runs, so the gates are portable
//! across core counts; `cores` records what the baseline machine
//! offered, and `single_core_host` flags runs where
//! `available_parallelism() == 1` — on such hosts every thread-scaling
//! ratio sits near 1.0 *by construction* and must not be read as a
//! parallelization regression. `BENCH_pipeline.json` at the repo root
//! records a baseline run (`cargo bench -p accelwall-bench --bench
//! pipeline > BENCH_pipeline.json`).

use accelerator_wall::json::Value;
use accelerator_wall::prelude::*;
use std::process::Command;
use std::time::{Duration, Instant};

/// Pool sizes the parent pins into the two child processes.
const SERIAL_THREADS: usize = 1;
const PARALLEL_THREADS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--child") {
        let mode = args.get(i + 1).map_or("full", String::as_str);
        child(mode);
        return;
    }
    parent(quick);
}

/// Spawn one pinned copy of this binary and parse its JSON report.
fn child_report(mode: &str, threads: usize) -> Value {
    let exe = std::env::current_exe().expect("bench exe path");
    let out = Command::new(exe)
        .args(["--child", mode])
        .env(accelwall_par::THREADS_ENV, threads.to_string())
        .output()
        .expect("child bench runs");
    assert!(
        out.status.success(),
        "child ({mode}, {threads} threads) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    Value::parse(&String::from_utf8_lossy(&out.stdout)).expect("child emits JSON")
}

fn field(report: &Value, key: &str) -> f64 {
    report
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("child report missing {key}"))
}

fn parent(quick: bool) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let single_core = cores == 1;
    let quick_serial = child_report("quick", SERIAL_THREADS);
    let quick_parallel = child_report("quick", PARALLEL_THREADS);
    let (qs, qp) = (
        field(&quick_serial, "all_ms"),
        field(&quick_parallel, "all_ms"),
    );
    let (q_point, q_lowered) = (
        field(&quick_serial, "sweep_per_point_ms"),
        field(&quick_serial, "sweep_lowered_ms"),
    );

    println!("{{");
    println!("  \"bench\": \"pipeline\",");
    println!("  \"cores\": {cores},");
    println!("  \"single_core_host\": {single_core},");
    if single_core {
        println!(
            "  \"note\": \"single-core host: thread-scaling speedups sit \
             near 1.0 by construction and are not regressions\","
        );
    }
    println!("  \"threads_serial\": {SERIAL_THREADS},");
    println!("  \"threads_parallel\": {PARALLEL_THREADS},");
    println!("  \"quick_all_serial_ms\": {qs:.3},");
    println!("  \"quick_all_parallel_ms\": {qp:.3},");
    println!("  \"quick_all_speedup\": {:.3},", qs / qp);
    println!("  \"quick_sweep_per_point_ms\": {q_point:.3},");
    println!("  \"quick_sweep_lowered_ms\": {q_lowered:.3},");
    if quick {
        println!(
            "  \"quick_sweep_lowering_speedup\": {:.3}",
            q_point / q_lowered
        );
        println!("}}");
        return;
    }
    println!(
        "  \"quick_sweep_lowering_speedup\": {:.3},",
        q_point / q_lowered
    );

    let serial = child_report("full", SERIAL_THREADS);
    let parallel = child_report("full", PARALLEL_THREADS);
    for kernel in [
        "all",
        "corpus",
        "fit",
        "sweep",
        "sched",
        "interp",
        "sensitivity",
    ] {
        let key = format!("{kernel}_ms");
        let (s, p) = (field(&serial, &key), field(&parallel, &key));
        println!("  \"{kernel}_serial_ms\": {s:.3},");
        println!("  \"{kernel}_parallel_ms\": {p:.3},");
        println!("  \"{kernel}_speedup\": {:.3},", s / p);
    }
    let (s, p) = (field(&serial, "all_ms"), field(&parallel, "all_ms"));
    println!(
        "  \"all_speedup_at_{PARALLEL_THREADS}_threads\": {:.3}",
        s / p
    );
    println!("}}");
}

/// One pinned configuration: time every kernel, report a flat JSON line.
fn child(mode: &str) {
    if mode == "quick" {
        let start = Instant::now();
        run_all_with(Ctx::with_space(SweepSpace::coarse()));
        let all_ms = ms(start.elapsed());
        // Sweep-kernel ratio on the full Table III grid: the hoisted
        // lowered sweep vs pricing every point with its own kernel walk.
        // Both run over one shared program, so the ratio isolates the
        // hoisting and is portable across machines.
        let program = std::sync::Arc::new(Workload::all()[0].default_instance().lower());
        let space = SweepSpace::table3();
        let per_point_start = Instant::now();
        for config in space.configs() {
            let r = simulate_lowered(&program, &config).expect("point");
            std::hint::black_box(r.cycles);
        }
        let sweep_per_point_ms = ms(per_point_start.elapsed());
        let lowered_start = Instant::now();
        let points = run_sweep_lowered(&program, &space).expect("sweep");
        let sweep_lowered_ms = ms(lowered_start.elapsed());
        std::hint::black_box(points.len());
        println!(
            "{{ \"all_ms\": {all_ms:.3}, \"sweep_per_point_ms\": {sweep_per_point_ms:.3}, \
             \"sweep_lowered_ms\": {sweep_lowered_ms:.3} }}"
        );
        return;
    }

    // Kernels first, each on fresh inputs (no Ctx memoization in play),
    // then the end-to-end run. Means over repeats keep the small kernels
    // out of timer noise; the sweep and `all` are single-shot.
    const REPEATS: u32 = 10;
    let corpus_ms = timed(REPEATS, || {
        std::hint::black_box(CorpusSpec::paper_scale().generate().len());
    });

    let corpus = CorpusSpec::paper_scale().generate();
    let fit_ms = timed(REPEATS, || {
        let fit = accelerator_wall::chipdb::fit::transistor_density_fit(&corpus).expect("fit");
        std::hint::black_box(fit.exponent);
        for &group in NodeGroup::all() {
            if let Ok(tdp) = accelerator_wall::chipdb::fit::tdp_fit(&corpus, group) {
                std::hint::black_box(tdp.exponent);
            }
        }
    });

    let dfg = Workload::all()[0].default_instance();
    let sweep_start = Instant::now();
    let points = run_sweep(&dfg, &SweepSpace::table3()).expect("sweep");
    let sweep_ms = ms(sweep_start.elapsed());
    std::hint::black_box(points.len());

    // Scheduler and interpreter breakdowns, both over one shared lowered
    // program — the representation the hot paths actually run on.
    let program = dfg.lower();
    let sched_config = DesignConfig::new(TechNode::N7, 256, 5, true);
    let sched_ms = timed(REPEATS, || {
        let s = schedule_lowered(&program, &sched_config).expect("schedule");
        std::hint::black_box(s.makespan);
    });

    let inputs: std::collections::HashMap<String, f64> = program
        .input_slots()
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.clone(), 0.5 + 0.1 * i as f64))
        .collect();
    let interp_ms = timed(REPEATS, || {
        let out = program.evaluate(&inputs).expect("evaluate");
        std::hint::black_box(out.len());
    });

    let sensitivity_ms = timed(REPEATS, || {
        for &domain in Domain::all() {
            for metric in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                let rows =
                    accelerator_wall::projection::sensitivity::wall_sensitivity(domain, metric)
                        .expect("sensitivity");
                std::hint::black_box(rows.len());
            }
        }
    });

    let all_start = Instant::now();
    run_all_with(Ctx::new());
    let all_ms = ms(all_start.elapsed());

    println!(
        "{{ \"all_ms\": {all_ms:.3}, \"corpus_ms\": {corpus_ms:.3}, \"fit_ms\": {fit_ms:.3}, \
         \"sweep_ms\": {sweep_ms:.3}, \"sched_ms\": {sched_ms:.3}, \
         \"interp_ms\": {interp_ms:.3}, \"sensitivity_ms\": {sensitivity_ms:.3} }}"
    );
}

/// In-process replica of `accelwall all`: every registry target, and
/// every one of them must succeed for the timing to count.
fn run_all_with(ctx: Ctx) {
    let results = Registry::paper().run_all(&ctx).expect("scheduling");
    for (id, r) in &results {
        assert!(r.is_ok(), "{id} failed during bench");
    }
    std::hint::black_box(results.len());
}

fn timed(repeats: u32, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    ms(start.elapsed() / repeats)
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
