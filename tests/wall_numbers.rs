//! End-to-end checks of the paper's headline numbers, exercising the whole
//! stack: datasets → potential model → CSR → Pareto projection.

use accelerator_wall::prelude::*;
use accelerator_wall::studies::{bitcoin, fpga, gpu, video};

#[test]
fn fig1_headline_triplet() {
    // Performance 510x, transistor performance 307x, CSR flat ~1.7x.
    let s = bitcoin::fig1_series().unwrap();
    assert!((350.0..700.0).contains(&s.peak_reported()));
    assert!((230.0..400.0).contains(&s.peak_physical()));
    let final_csr = s.rows.last().unwrap().csr;
    assert!((1.0..2.6).contains(&final_csr));
}

#[test]
fn section4_peak_gains() {
    // Video: 64x perf, 34x EE. FPGA: 24x/9x perf, 14x/7x EE.
    let video_perf = video::performance_series().unwrap();
    assert!((50.0..80.0).contains(&video_perf.peak_reported()));
    let video_ee = video::efficiency_series().unwrap();
    assert!((25.0..45.0).contains(&video_ee.peak_reported()));

    let alex = fpga::performance_series(fpga::CnnModel::AlexNet).unwrap();
    assert!((18.0..30.0).contains(&alex.peak_reported()));
    let vgg = fpga::performance_series(fpga::CnnModel::Vgg16).unwrap();
    assert!((7.0..13.0).contains(&vgg.peak_reported()));
}

#[test]
fn mature_domains_have_flat_csr_emerging_domains_do_not() {
    // The paper's central observation (Section IV-E).
    let video = video::performance_series().unwrap();
    assert!(video.csr_of_best_chip() <= 1.0, "mature: video");

    for game in gpu::fig5_games() {
        let s = gpu::performance_series(&game).unwrap();
        assert!(s.csr_of_best_chip() < 1.7, "mature: {}", game.title);
    }

    let cnn = fpga::performance_series(fpga::CnnModel::AlexNet).unwrap();
    assert!(cnn.peak_csr() > 2.5, "emerging: CNN CSR should still climb");
}

#[test]
fn section7_wall_headrooms() {
    // Paper §VII: remaining improvements per domain (log..linear bands,
    // widened for our substituted datasets — see EXPERIMENTS.md).
    let cases = [
        (Domain::VideoDecoding, TargetMetric::Performance, 1.5, 130.0),
        (
            Domain::VideoDecoding,
            TargetMetric::EnergyEfficiency,
            1.2,
            40.0,
        ),
        (Domain::GpuGraphics, TargetMetric::Performance, 1.0, 4.0),
        (
            Domain::GpuGraphics,
            TargetMetric::EnergyEfficiency,
            1.0,
            2.5,
        ),
        (Domain::FpgaCnn, TargetMetric::Performance, 1.2, 8.0),
        (Domain::FpgaCnn, TargetMetric::EnergyEfficiency, 1.2, 6.0),
        (Domain::BitcoinMining, TargetMetric::Performance, 1.0, 25.0),
        (
            Domain::BitcoinMining,
            TargetMetric::EnergyEfficiency,
            1.0,
            9.0,
        ),
    ];
    for (domain, metric, lo, hi) in cases {
        let w = accelerator_wall(domain, metric).unwrap();
        assert!(
            w.further_log >= lo && w.further_linear <= hi,
            "{domain} {metric:?}: headroom {:.1}-{:.1} outside [{lo}, {hi}]",
            w.further_log,
            w.further_linear
        );
    }
}

#[test]
fn gpu_walls_are_the_starkest() {
    // The paper's Fig. 15/16 ordering: GPUs have the least headroom of
    // the four domains under the linear model.
    let linear_headroom = |d| {
        accelerator_wall(d, TargetMetric::Performance)
            .unwrap()
            .further_linear
    };
    let gpu = linear_headroom(Domain::GpuGraphics);
    for d in [Domain::VideoDecoding, Domain::BitcoinMining] {
        assert!(gpu < linear_headroom(d), "GPU headroom should trail {d}");
    }
}

#[test]
fn fig3d_collapse_reproduced_end_to_end() {
    // ~1000x -> ~300x for the 800 mm² 5 nm chip under 800 W.
    let model = PotentialModel::paper();
    let rows = fig3d_grid(&model);
    let capped = rows
        .iter()
        .find(|r| r.node == TechNode::N5 && r.die_mm2 == 800.0 && r.zone == TdpZone::W200To800)
        .unwrap();
    assert!((240.0..360.0).contains(&capped.throughput_gain));
}

#[test]
fn corpus_fitted_model_reaches_same_walls() {
    // Swapping the paper-published fits for fits over our synthetic corpus
    // must not change any conclusion: the regression recovers the law.
    let corpus = CorpusSpec::paper_scale().generate();
    let fitted = PotentialModel::from_corpus(&corpus).unwrap();
    let paper = PotentialModel::paper();
    let baseline = PotentialModel::reference_spec();
    for &node in &[TechNode::N16, TechNode::N7, TechNode::N5] {
        let spec = ChipSpec::new(node, 400.0, 1.0, 300.0);
        let a = fitted.throughput_gain(&spec, &baseline);
        let b = paper.throughput_gain(&spec, &baseline);
        assert!(
            (a / b - 1.0).abs() < 0.35,
            "{node}: fitted {a:.1} vs paper {b:.1}"
        );
    }
}

#[test]
fn eq2_identity_holds_on_real_study_data() {
    // reported = specialization x cmos, exactly, on every study row.
    for series in [
        bitcoin::fig1_series().unwrap(),
        video::performance_series().unwrap(),
        fpga::performance_series(fpga::CnnModel::Vgg16).unwrap(),
    ] {
        for row in &series.rows {
            let d = decompose(row.reported_gain, row.physical_gain, 1.0).unwrap();
            assert!((d.specialization * d.cmos - row.reported_gain).abs() < 1e-9);
            assert!((d.specialization - row.csr).abs() < 1e-9);
        }
    }
}
