//! The pre-serialized response cache: warm requests skip rendering.
//!
//! The artifact cache memoizes *computed results*; this cache memoizes
//! the *wire bytes* built from them — header block (both persistence
//! modes, `Content-Length` precomputed) plus body — keyed by the request
//! shape (`path`, query string, `Accept` variant). A warm request on
//! the reactor thread is then parse → key → one lookup → `writev`,
//! never re-rendering JSON and never crossing into the worker pool.
//!
//! Only safe entries are admitted, by the reactor/pool in `lib.rs`:
//! `GET` requests answering `200` on the immutable-content routes
//! (`/experiments`, `/experiments/{id}`, `/query`, `/query/schema`).
//! Those bodies are deterministic for the lifetime of the process — the
//! artifact cache memoizes forever and query answers are canonical — so
//! entries can never go stale. `/healthz` and `/metrics` change per
//! request and are never cached; non-200s (404 rosters, failure bodies)
//! are recomputed so retry semantics stay live.
//!
//! Eviction is LRU under a hard byte cap, mirroring the query engine's
//! LRU discipline: a logical tick orders entries, eviction removes the
//! least-recently-used until the newcomer fits, and an entry larger
//! than the whole cap is refused outright. Lookups scan a flat `Vec`
//! guarded by one mutex — entry counts are small (bounded by the
//! registry + query working set under the byte cap) and the scan
//! compares a precomputed 64-bit key hash before ever touching the key
//! string, so the warm path stays cheap and deterministic (no
//! hash-order iteration anywhere).

use std::sync::{Arc, Mutex, PoisonError};

use crate::http::Response;
use crate::metrics::Route;

/// One cached response: precomputed wire bytes for both persistence
/// modes plus the metadata the reactor needs to record metrics.
#[derive(Debug)]
pub struct CachedResponse {
    /// HTTP status (always 200 under the current admission rules).
    pub status: u16,
    /// The route label the original compute was observed under.
    pub route: Route,
    /// Header block ending in `\r\n\r\n`, `Connection: keep-alive`.
    pub head_keep: Vec<u8>,
    /// Header block ending in `\r\n\r\n`, `Connection: close`.
    pub head_close: Vec<u8>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

/// A point-in-time snapshot of the cache counters for `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RespCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the request went to the pool).
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to fit newcomers under the byte cap.
    pub evictions: u64,
    /// Live entries.
    pub entries: u64,
    /// Bytes currently held (heads + bodies + keys).
    pub bytes: u64,
    /// The configured byte cap.
    pub capacity_bytes: u64,
}

struct Entry {
    /// FNV-1a of `key`, compared before the key string on lookup.
    hash: u64,
    key: Box<str>,
    response: Arc<CachedResponse>,
    cost: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: Vec<Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// The cache itself: one mutex over a flat entry list (see module docs
/// for why that is enough).
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResponseCache")
            .field("capacity", &self.capacity)
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .finish_non_exhaustive()
    }
}

impl ResponseCache {
    /// An empty cache capped at `capacity` bytes.
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Looks `key` up, refreshing its LRU position on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<CachedResponse>> {
        let hash = fnv1a(key.as_bytes());
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner
            .entries
            .iter_mut()
            .find(|e| e.hash == hash && *e.key == *key)
        {
            Some(entry) => {
                entry.last_used = tick;
                let response = Arc::clone(&entry.response);
                inner.hits += 1;
                Some(response)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Admits one response under `key`, pre-rendering both header-block
    /// variants. A duplicate key (two pool workers racing the same
    /// compute) keeps the incumbent; an entry larger than the whole cap
    /// is refused; otherwise LRU entries are evicted until it fits.
    pub fn insert(&self, key: &str, route: Route, response: &Response) {
        let cached = CachedResponse {
            status: response.status,
            route,
            head_keep: response.head_bytes(true),
            head_close: response.head_bytes(false),
            body: response.body.clone(),
        };
        let cost = key.len() + cached.head_keep.len() + cached.head_close.len() + cached.body.len();
        if cost > self.capacity {
            return;
        }
        let hash = fnv1a(key.as_bytes());
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner
            .entries
            .iter()
            .any(|e| e.hash == hash && *e.key == *key)
        {
            return;
        }
        while inner.bytes + cost > self.capacity {
            let Some(oldest) = inner
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
            else {
                break;
            };
            let evicted = inner.entries.swap_remove(oldest);
            inner.bytes -= evicted.cost;
            inner.evictions += 1;
        }
        inner.tick += 1;
        let last_used = inner.tick;
        inner.bytes += cost;
        inner.insertions += 1;
        inner.entries.push(Entry {
            hash,
            key: key.into(),
            response: Arc::new(cached),
            cost,
            last_used,
        });
    }

    /// A counter snapshot for the `/metrics` rendering.
    pub fn stats(&self) -> RespCacheStats {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        RespCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.entries.len() as u64,
            bytes: inner.bytes as u64,
            capacity_bytes: self.capacity as u64,
        }
    }
}

/// FNV-1a over `bytes` — the same dependency-free hash idiom the query
/// engine keys with.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, body: &str) -> (String, Response) {
        (key.to_string(), Response::json(200, body.to_string()))
    }

    #[test]
    fn hits_return_prerendered_bytes_for_both_modes() {
        let cache = ResponseCache::new(4096);
        let (key, response) = entry("exp:fig3a:j", "{\"x\": 1}\n");
        assert!(cache.get(&key).is_none());
        cache.insert(&key, Route::Experiment, &response);
        let hit = cache.get(&key).expect("inserted entry");
        assert_eq!(hit.status, 200);
        assert_eq!(hit.body, response.body);
        let keep = String::from_utf8(hit.head_keep.clone()).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains(&format!("Content-Length: {}\r\n", response.body.len())));
        let close = String::from_utf8(hit.head_close.clone()).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_under_the_byte_cap_and_refuses_oversize() {
        // Measure one entry's true cost (key + both heads + body), then
        // cap the cache at four-and-a-half entries.
        let probe = ResponseCache::new(1 << 20);
        let (key, response) = entry("exp:fig0:j", &"x".repeat(64));
        probe.insert(&key, Route::Experiment, &response);
        let cost = probe.stats().bytes as usize;
        let cache = ResponseCache::new(4 * cost + cost / 2);
        for i in 0..4 {
            let (key, response) = entry(&format!("exp:fig{i}:j"), &"x".repeat(64));
            cache.insert(&key, Route::Experiment, &response);
        }
        // Touch the oldest so eviction order reflects use, not insertion.
        assert!(cache.get("exp:fig0:j").is_some());
        let (key, response) = entry("exp:fig4:j", &"y".repeat(64));
        cache.insert(&key, Route::Experiment, &response);
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.bytes <= stats.capacity_bytes, "{stats:?}");
        assert!(cache.get("exp:fig0:j").is_some(), "recently-used evicted");
        assert!(cache.get("exp:fig1:j").is_none(), "LRU survived");
        // An entry bigger than the whole cap is refused, not thrashed.
        let before = cache.stats();
        let (key, response) = entry("exp:huge:j", &"z".repeat(4096));
        cache.insert(&key, Route::Experiment, &response);
        assert_eq!(cache.stats().insertions, before.insertions);
    }

    #[test]
    fn duplicate_keys_keep_the_incumbent() {
        let cache = ResponseCache::new(4096);
        let (key, first) = entry("roster", "[1]\n");
        cache.insert(&key, Route::Experiments, &first);
        let (_, second) = entry("roster", "[2]\n");
        cache.insert(&key, Route::Experiments, &second);
        assert_eq!(cache.stats().insertions, 1);
        assert_eq!(cache.get(&key).expect("entry").body, first.body);
    }
}
