//! Chip Specialization Return (CSR) — the paper's core metric.
//!
//! Eq. 1 defines CSR as the ratio between a chip's end-to-end gain on its
//! target computation and the gain attributable to the chip's physical
//! (CMOS-driven) capabilities alone:
//!
//! ```text
//! CSR(Alg, Fwk, Plt, Eng) = Gain(Alg, Fwk, Plt, Eng, Phy) / Gain(Phy)
//! ```
//!
//! Eq. 2 then factors any *reported* gain ratio between two chips into a
//! specialization-driven part (the CSR ratio) and a CMOS-driven part (the
//! physical-potential ratio). Eqs. 3 and 4 extend this to populations:
//! the relative gain between two GPU architectures is the geometric mean of
//! their per-application gain ratios over shared applications, and pairs
//! with too few shared applications are connected transitively through
//! intermediary architectures. This crate implements all four equations.
//!
//! # Example
//!
//! ```
//! use accelwall_csr::{csr, decompose};
//!
//! // A chip reports 510x the baseline's gain while its transistors alone
//! // account for 307x (the paper's Fig. 1 Bitcoin headline):
//! let d = decompose(510.0, 307.0, 1.0).unwrap();
//! assert!((d.specialization - 510.0 / 307.0).abs() < 1e-9);
//! assert!((d.specialization * d.cmos - d.reported).abs() < 1e-9);
//! assert!((csr(510.0, 307.0).unwrap() - d.specialization).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod relation;
pub mod stack;

pub use relation::{ArchObservations, RelationMatrix};
pub use stack::StackLayer;

use std::error::Error;
use std::fmt;

/// Errors produced by the CSR computations.
#[derive(Debug, Clone, PartialEq)]
pub enum CsrError {
    /// A gain or potential value was not strictly positive and finite.
    InvalidGain {
        /// Which quantity was invalid.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An architecture name was not present in the observations.
    UnknownArchitecture(String),
    /// Building the relation matrix found no connected observations.
    EmptyObservations,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::InvalidGain { what, value } => {
                write!(
                    f,
                    "invalid gain: {what} = {value} (must be positive and finite)"
                )
            }
            CsrError::UnknownArchitecture(name) => write!(f, "unknown architecture {name:?}"),
            CsrError::EmptyObservations => write!(f, "no observations to build relations from"),
        }
    }
}

impl Error for CsrError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CsrError>;

/// Eq. 1: the Chip Specialization Return of a design.
///
/// `reported_gain` is the end-to-end gain the chip achieves on its target
/// computation relative to some baseline; `physical_gain` is the gain the
/// CMOS potential model attributes to physics alone over the same baseline.
///
/// # Errors
///
/// Returns [`CsrError::InvalidGain`] if either argument is not strictly
/// positive and finite.
pub fn csr(reported_gain: f64, physical_gain: f64) -> Result<f64> {
    validate("reported_gain", reported_gain)?;
    validate("physical_gain", physical_gain)?;
    Ok(reported_gain / physical_gain)
}

/// The Eq. 2 factorization of a reported gain ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainDecomposition {
    /// The reported end-to-end gain ratio `Gain_A / Gain_B`.
    pub reported: f64,
    /// Specialization-driven part: `CSR_A / CSR_B`.
    pub specialization: f64,
    /// CMOS-driven part: `Gain(Phy_A) / Gain(Phy_B)`.
    pub cmos: f64,
}

/// Eq. 2: factors a reported gain ratio between chips A and B into its
/// specialization-driven and CMOS-driven parts, given each chip's physical
/// potential over a common baseline.
///
/// The identity `reported = specialization × cmos` holds exactly.
///
/// # Errors
///
/// Returns [`CsrError::InvalidGain`] for non-positive or non-finite inputs.
pub fn decompose(
    reported_a_over_b: f64,
    physical_a: f64,
    physical_b: f64,
) -> Result<GainDecomposition> {
    validate("reported_a_over_b", reported_a_over_b)?;
    validate("physical_a", physical_a)?;
    validate("physical_b", physical_b)?;
    let cmos = physical_a / physical_b;
    Ok(GainDecomposition {
        reported: reported_a_over_b,
        specialization: reported_a_over_b / cmos,
        cmos,
    })
}

/// A time-indexed CSR series: the trajectory plots of Figs. 1, 4, 8, 9.
///
/// Each entry pairs a label (chip name, venue-year, intro date) with the
/// chip's reported gain and physical gain over the series baseline; the
/// CSR column is their ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrSeries {
    /// One row per chip, in presentation order.
    pub rows: Vec<CsrPoint>,
}

/// One chip in a [`CsrSeries`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrPoint {
    /// Display label for the chip.
    pub label: String,
    /// Reported end-to-end gain over the series baseline.
    pub reported_gain: f64,
    /// CMOS-driven (physical) gain over the series baseline.
    pub physical_gain: f64,
    /// Chip Specialization Return (Eq. 1).
    pub csr: f64,
}

impl CsrSeries {
    /// Builds a series from `(label, reported gain, physical gain)` rows.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::InvalidGain`] if any gain is non-positive or
    /// non-finite.
    pub fn new<L: Into<String>>(rows: Vec<(L, f64, f64)>) -> Result<Self> {
        let rows = rows
            .into_iter()
            .map(|(label, reported, physical)| {
                Ok(CsrPoint {
                    label: label.into(),
                    reported_gain: reported,
                    physical_gain: physical,
                    csr: csr(reported, physical)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CsrSeries { rows })
    }

    /// Maximum reported gain in the series.
    pub fn peak_reported(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.reported_gain)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum physical gain in the series.
    pub fn peak_physical(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.physical_gain)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Maximum CSR in the series.
    pub fn peak_csr(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.csr)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fits the quadratic trend curve the paper draws through its Fig. 5
    /// scatter: `value ≈ c₀ + c₁·i + c₂·i²` over the series positions,
    /// where `selector` picks the column (reported gain, CSR, ...).
    ///
    /// # Errors
    ///
    /// Returns [`CsrError::EmptyObservations`] for series with fewer than
    /// three rows (a quadratic needs three points).
    pub fn fit_trend(
        &self,
        selector: impl Fn(&CsrPoint) -> f64,
    ) -> Result<accelwall_stats::Polynomial> {
        if self.rows.len() < 3 {
            return Err(CsrError::EmptyObservations);
        }
        let xs: Vec<f64> = (0..self.rows.len()).map(|i| i as f64).collect();
        let ys: Vec<f64> = self.rows.iter().map(selector).collect();
        accelwall_stats::Polynomial::fit(&xs, &ys, 2).map_err(|_| CsrError::EmptyObservations)
    }

    /// CSR of the chip with the best reported gain — the paper repeatedly
    /// observes that for mature domains this value is ≈ 1 or below even
    /// when the peak CSR across the series is higher.
    pub fn csr_of_best_chip(&self) -> f64 {
        self.rows
            .iter()
            .max_by(|a, b| a.reported_gain.total_cmp(&b.reported_gain))
            .map_or(f64::NAN, |r| r.csr)
    }
}

fn validate(what: &'static str, value: f64) -> Result<()> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(CsrError::InvalidGain { what, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_is_gain_over_physical() {
        assert_eq!(csr(100.0, 50.0).unwrap(), 2.0);
        assert_eq!(csr(50.0, 100.0).unwrap(), 0.5);
    }

    #[test]
    fn csr_rejects_bad_inputs() {
        assert!(csr(0.0, 1.0).is_err());
        assert!(csr(1.0, -1.0).is_err());
        assert!(csr(f64::NAN, 1.0).is_err());
        assert!(csr(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn decompose_identity_exact() {
        let d = decompose(64.0, 36.0, 1.0).unwrap();
        assert_eq!(d.reported, d.specialization * d.cmos);
        assert_eq!(d.cmos, 36.0);
    }

    #[test]
    fn decompose_is_baseline_independent() {
        // Scaling both physical potentials by the same factor changes
        // nothing (only the ratio enters Eq. 2).
        let d1 = decompose(10.0, 8.0, 2.0).unwrap();
        let d2 = decompose(10.0, 80.0, 20.0).unwrap();
        assert!((d1.specialization - d2.specialization).abs() < 1e-12);
        assert!((d1.cmos - d2.cmos).abs() < 1e-12);
    }

    #[test]
    fn series_fig1_bitcoin_headline() {
        // Paper Fig. 1: performance 510x, transistor performance 307x,
        // so CSR of the last chip is ~1.7.
        let series = CsrSeries::new(vec![
            ("baseline 130nm", 1.0, 1.0),
            ("28nm miner", 180.0, 120.0),
            ("16nm miner", 510.0, 307.4),
        ])
        .unwrap();
        assert!((series.csr_of_best_chip() - 510.0 / 307.4).abs() < 1e-9);
        assert_eq!(series.peak_reported(), 510.0);
        assert_eq!(series.peak_physical(), 307.4);
    }

    #[test]
    fn best_chip_csr_can_trail_peak_csr() {
        // A mid-series chip can hold the CSR record while the newest chip
        // merely rides physics — the paper's recurring observation.
        let series = CsrSeries::new(vec![
            ("a", 1.0, 1.0),
            ("b", 6.0, 3.0),   // CSR 2.0
            ("c", 10.0, 10.0), // CSR 1.0, best reported
        ])
        .unwrap();
        assert_eq!(series.peak_csr(), 2.0);
        assert_eq!(series.csr_of_best_chip(), 1.0);
    }

    #[test]
    fn series_rejects_invalid_rows() {
        assert!(CsrSeries::new(vec![("x", -1.0, 1.0)]).is_err());
    }

    #[test]
    fn trend_fit_recovers_quadratic_growth() {
        // Gains growing as 1 + i² with flat CSR: the fitted curvature of
        // the gain column is positive, of the CSR column ~zero.
        let rows: Vec<(String, f64, f64)> = (0..8)
            .map(|i| {
                let gain = 1.0 + (i * i) as f64;
                (format!("chip{i}"), gain, gain)
            })
            .collect();
        let s = CsrSeries::new(rows).unwrap();
        let gain_trend = s.fit_trend(|r| r.reported_gain).unwrap();
        assert!(gain_trend.coeffs[2] > 0.5, "{:?}", gain_trend.coeffs);
        let csr_trend = s.fit_trend(|r| r.csr).unwrap();
        assert!(csr_trend.coeffs[2].abs() < 1e-9);
    }

    #[test]
    fn trend_fit_needs_three_points() {
        let s = CsrSeries::new(vec![("a", 1.0, 1.0), ("b", 2.0, 1.0)]).unwrap();
        assert!(s.fit_trend(|r| r.csr).is_err());
    }
}
