//! Throughput/latency baseline for `accelwall serve`.
//!
//! Starts an in-process server (4 workers, the CLI default) backed by
//! the full paper registry and measures the three numbers that define
//! the artifact-server value proposition:
//!
//! 1. **cold first request** — `GET /experiments/fig14` on an empty
//!    cache (computes fig13 + fig14 and their sweeps);
//! 2. **warm-cache latency** — the same request again, served from the
//!    per-experiment `OnceLock` cache;
//! 3. **warm throughput** — 8 client threads hammering a warm target,
//!    requests per second — measured twice: close-per-request (every
//!    request pays connect + teardown) and keep-alive (one connection
//!    per client, requests pipelined 16 deep), plus a concurrency sweep
//!    over 1/8/64/256 keep-alive connections;
//! 4. **query cold/warm latency and hit rate** — `GET /query` for an
//!    ad-hoc design point: the cold miss computes through the engine,
//!    the warm repeats come out of the sharded LRU, and the hit rate is
//!    read back from `/metrics`;
//! 5. **disarmed fault-probe cost** — `accelwall_faults::probe` with no
//!    `ACCELWALL_FAULTS` plan armed, which every request and compute
//!    attempt pays; the bench asserts it stays under 5 % of the warm
//!    request path.
//!
//! The output is one JSON document; `BENCH_serve.json` at the repo root
//! records a baseline run (`cargo bench -p accelwall-bench --bench
//! serve > BENCH_serve.json`).

use accelerator_wall::prelude::{ArtifactCache, Ctx, Registry};
use accelwall_server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "bench request failed:\n{response}"
    );
    response
}

/// Drives `requests` GETs for `path` down ONE keep-alive connection in
/// pipelined bursts of `depth`, asserting every response is a 200.
fn keepalive_client(addr: SocketAddr, path: &str, requests: usize, depth: usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let request = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    let mut burst_bytes = Vec::with_capacity(request.len() * depth);
    let mut carry = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut remaining = requests;
    while remaining > 0 {
        let burst = remaining.min(depth);
        burst_bytes.clear();
        for _ in 0..burst {
            burst_bytes.extend_from_slice(request.as_bytes());
        }
        stream.write_all(&burst_bytes).expect("send burst");
        for _ in 0..burst {
            read_frame(&mut stream, &mut carry, &mut scratch);
        }
        remaining -= burst;
    }
}

/// Reads one `Content-Length`-framed response off `stream` (via the
/// cross-call `carry` buffer, which may already hold pipelined bytes).
fn read_frame(stream: &mut TcpStream, carry: &mut Vec<u8>, scratch: &mut [u8]) {
    loop {
        if let Some(head_end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
            assert!(
                head.starts_with("HTTP/1.1 200"),
                "bench request failed:\n{head}"
            );
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.trim().parse().ok())
                .expect("Content-Length");
            let total = head_end + 4 + length;
            while carry.len() < total {
                let n = stream.read(scratch).expect("read body");
                assert!(n > 0, "connection closed mid-frame");
                carry.extend_from_slice(&scratch[..n]);
            }
            carry.drain(..total);
            return;
        }
        let n = stream.read(scratch).expect("read head");
        assert!(n > 0, "connection closed mid-head");
        carry.extend_from_slice(&scratch[..n]);
    }
}

fn main() {
    let cache = ArtifactCache::new(Registry::paper(), Ctx::new());
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        ..ServerConfig::default()
    };
    let server = Server::bind(config, cache).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let run = std::thread::spawn(move || server.run());

    // 1. Cold first request: computes the artifact and its dependency.
    let cold_start = Instant::now();
    get(addr, "/experiments/fig14");
    let cold = cold_start.elapsed();

    // 2. Warm-cache latency: mean over repeated single-client requests.
    const WARM_SAMPLES: u32 = 200;
    let warm_start = Instant::now();
    for _ in 0..WARM_SAMPLES {
        get(addr, "/experiments/fig14");
    }
    let warm = warm_start.elapsed() / WARM_SAMPLES;

    // 3. Warm throughput: 8 clients, fixed request budget each.
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 250;
    get(addr, "/experiments/fig3b"); // warm the target
    let throughput_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                for _ in 0..REQUESTS_PER_CLIENT {
                    get(addr, "/experiments/fig3b");
                }
            });
        }
    });
    let throughput_wall = throughput_start.elapsed();
    let total_requests = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    let rps = total_requests / throughput_wall.as_secs_f64();

    // 3b. Keep-alive throughput: the same 8 clients, but each holds ONE
    // connection and pipelines requests 16 deep — the reactor's warm
    // path (parse → response-cache hit → writev), no per-request
    // connect/teardown.
    const PIPELINE_DEPTH: usize = 16;
    const KEEPALIVE_REQUESTS_PER_CLIENT: usize = 4_000;
    let keepalive_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                keepalive_client(
                    addr,
                    "/experiments/fig3b",
                    KEEPALIVE_REQUESTS_PER_CLIENT,
                    PIPELINE_DEPTH,
                );
            });
        }
    });
    let keepalive_wall = keepalive_start.elapsed();
    let keepalive_total = (CLIENTS * KEEPALIVE_REQUESTS_PER_CLIENT) as f64;
    let rps_keepalive = keepalive_total / keepalive_wall.as_secs_f64();
    let keepalive_close_ratio = rps_keepalive / rps;

    // 3c. Concurrency sweep: keep-alive throughput as the connection
    // count scales past the worker count (the reactor multiplexes; the
    // pool is never the warm path).
    let mut sweep = Vec::new();
    for conns in [1usize, 8, 64, 256] {
        let per_client = (16_384 / conns).max(PIPELINE_DEPTH);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..conns {
                scope.spawn(|| {
                    keepalive_client(addr, "/experiments/fig3b", per_client, PIPELINE_DEPTH);
                });
            }
        });
        let wall = start.elapsed();
        sweep.push((conns, (conns * per_client) as f64 / wall.as_secs_f64()));
    }

    // 4. Query engine: cold miss vs warm repeat. The warm repeats are
    // served upstream of the engine (the reactor's pre-serialized
    // response cache), so the hit rate is counted as "query answers
    // served without spending a compute" — a before/after delta of the
    // engine's compute counter over the query phase.
    const QUERY: &str = "/query?workload=fft&node=7nm&lanes=4";
    const QUERY_WARM_SAMPLES: u32 = 200;
    let counter = |metrics: &str, name: &str| -> f64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    let before = get(addr, "/metrics");
    let computes_before = counter(&before, "accelwall_query_computes_total");
    let query_cold_start = Instant::now();
    get(addr, QUERY);
    let query_cold = query_cold_start.elapsed();
    let query_warm_start = Instant::now();
    for _ in 0..QUERY_WARM_SAMPLES {
        get(addr, QUERY);
    }
    let query_warm = query_warm_start.elapsed() / QUERY_WARM_SAMPLES;
    let metrics = get(addr, "/metrics");
    let computes = counter(&metrics, "accelwall_query_computes_total") - computes_before;
    let query_requests = f64::from(QUERY_WARM_SAMPLES) + 1.0;
    let query_hit_rate = 1.0 - computes / query_requests;

    handle.shutdown();
    run.join().expect("server thread").expect("clean drain");

    // 5. Disarmed probe cost: the per-request fault-injection tax when
    // no plan is armed (one relaxed atomic load per probe).
    const PROBE_SAMPLES: u32 = 1_000_000;
    let probe_start = Instant::now();
    for _ in 0..PROBE_SAMPLES {
        std::hint::black_box(accelwall_faults::probe(std::hint::black_box(
            accelwall_faults::sites::SERVE_REQUEST,
        )))
        .expect("no plan armed");
    }
    let probe_ns = probe_start.elapsed().as_secs_f64() * 1e9 / f64::from(PROBE_SAMPLES);
    // The warm request path pays one probe per connection.
    let probe_overhead_pct = probe_ns / (warm.as_secs_f64() * 1e9) * 100.0;
    assert!(
        probe_overhead_pct < 5.0,
        "disarmed probes cost {probe_overhead_pct:.3}% of the warm path (budget: 5%)"
    );

    println!("{{");
    println!("  \"bench\": \"serve\",");
    println!("  \"workers\": 4,");
    println!("  \"cold_first_request_ms\": {:.3},", ms(cold));
    println!("  \"warm_cache_request_ms\": {:.3},", ms(warm));
    println!(
        "  \"warm_speedup\": {:.1},",
        cold.as_secs_f64() / warm.as_secs_f64()
    );
    println!("  \"throughput_clients\": {CLIENTS},");
    println!("  \"throughput_requests\": {},", total_requests as u64);
    println!("  \"throughput_rps\": {rps:.0},");
    println!("  \"throughput_rps_keepalive\": {rps_keepalive:.0},");
    println!("  \"keepalive_pipeline_depth\": {PIPELINE_DEPTH},");
    println!("  \"keepalive_close_ratio\": {keepalive_close_ratio:.2},");
    println!("  \"concurrency_sweep\": [");
    for (i, (conns, sweep_rps)) in sweep.iter().enumerate() {
        let comma = if i + 1 < sweep.len() { "," } else { "" };
        println!("    {{ \"connections\": {conns}, \"rps\": {sweep_rps:.0} }}{comma}");
    }
    println!("  ],");
    println!("  \"query_cold_ms\": {:.3},", ms(query_cold));
    println!("  \"query_warm_ms\": {:.3},", ms(query_warm));
    println!("  \"query_hit_rate\": {query_hit_rate:.4},");
    println!("  \"disarmed_probe_ns\": {probe_ns:.2},");
    println!("  \"disarmed_probe_warm_overhead_pct\": {probe_overhead_pct:.4}");
    println!("}}");
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}
