//! Randomized functional validation: the workload DFGs must agree with
//! their reference kernels on arbitrary inputs, not just the fixed vectors
//! the unit tests use. Driven by the deterministic [`Rng`] from
//! `accelwall-stats`.

use accelwall_stats::Rng;
use accelwall_workloads::{linalg, simple, sorting, stencil, video};
use std::collections::HashMap;

const CASES: u64 = 48;

#[test]
fn triad_agrees_on_random_inputs() {
    let mut rng = Rng::seed(0xF022_0001);
    for _ in 0..CASES {
        let s = rng.uniform(-100.0, 100.0);
        let n = rng.range(4, 24) as usize;
        let bs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e3, 1e3)).collect();
        let cs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e3, 1e3)).collect();
        let g = simple::build_triad(n);
        let mut inputs = HashMap::from([("s".to_string(), s)]);
        for i in 0..n {
            inputs.insert(format!("b{i}"), bs[i]);
            inputs.insert(format!("c{i}"), cs[i]);
        }
        let out = g.evaluate(&inputs).unwrap();
        for (i, want) in simple::triad_reference(s, &bs, &cs).iter().enumerate() {
            let got = out[&format!("a{i}")];
            assert!((got - want).abs() < 1e-9, "lane {i}: {got} vs {want}");
        }
    }
}

#[test]
fn reduction_agrees_on_random_inputs() {
    let mut rng = Rng::seed(0xF022_0002);
    for _ in 0..CASES {
        let n = rng.range(1, 200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e4, 1e4)).collect();
        let g = simple::build_reduction(xs.len());
        let inputs: HashMap<String, f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        let out = g.evaluate(&inputs).unwrap();
        // Tree summation reorders floating-point adds; allow relative slack.
        let want = simple::reduction_reference(&xs);
        let mag: f64 = xs.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        assert!((out["sum"] - want).abs() < 1e-9 * mag);
    }
}

#[test]
fn sad_agrees_on_random_blocks() {
    let mut rng = Rng::seed(0xF022_0003);
    for _ in 0..CASES {
        let cur: Vec<f64> = (0..16).map(|_| rng.uniform(0.0, 255.0).floor()).collect();
        let refb: Vec<f64> = (0..16).map(|_| rng.uniform(0.0, 255.0).floor()).collect();
        let g = video::build_sad(4, 4);
        let mut inputs = HashMap::new();
        for r in 0..4 {
            for c in 0..4 {
                inputs.insert(format!("c{r}_{c}"), cur[r * 4 + c]);
                inputs.insert(format!("r{r}_{c}"), refb[r * 4 + c]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        assert!((out["sad"] - video::sad_reference(&cur, &refb)).abs() < 1e-9);
    }
}

#[test]
fn bitonic_sorts_random_inputs() {
    let mut rng = Rng::seed(0xF022_0004);
    for _ in 0..CASES {
        let xs: Vec<f64> = (0..16).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let g = sorting::build_bitonic(16);
        let inputs: HashMap<String, f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        let out = g.evaluate(&inputs).unwrap();
        let got: Vec<f64> = (0..16).map(|i| out[&format!("y{i}")]).collect();
        assert_eq!(got, sorting::sort_reference(&xs));
    }
}

#[test]
fn gmm_agrees_on_random_matrices() {
    let mut rng = Rng::seed(0xF022_0005);
    for _ in 0..CASES {
        let flat: Vec<f64> = (0..32).map(|_| rng.uniform(-50.0, 50.0)).collect();
        let n = 4;
        let g = linalg::build_gmm(n);
        let a: Vec<Vec<f64>> = (0..n).map(|i| flat[i * n..(i + 1) * n].to_vec()).collect();
        let m: Vec<Vec<f64>> = (0..n)
            .map(|i| flat[16 + i * n..16 + (i + 1) * n].to_vec())
            .collect();
        let mut inputs = HashMap::new();
        for i in 0..n {
            for j in 0..n {
                inputs.insert(format!("a{i}_{j}"), a[i][j]);
                inputs.insert(format!("b{i}_{j}"), m[i][j]);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let c = linalg::gmm_reference(&a, &m);
        for i in 0..n {
            for j in 0..n {
                let got = out[&format!("c{i}_{j}")];
                assert!((got - c[i][j]).abs() < 1e-6, "cell ({i}, {j})");
            }
        }
    }
}

#[test]
fn stencil2d_agrees_on_random_grids() {
    let mut rng = Rng::seed(0xF022_0006);
    for _ in 0..CASES {
        let cells: Vec<f64> = (0..25).map(|_| rng.uniform(-100.0, 100.0)).collect();
        let weights: Vec<f64> = (0..9).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let g = stencil::build_2d(5, 5);
        let grid: Vec<Vec<f64>> = (0..5).map(|r| cells[r * 5..(r + 1) * 5].to_vec()).collect();
        let w: [f64; 9] = weights.as_slice().try_into().unwrap();
        let mut inputs = HashMap::new();
        for (k, wv) in w.iter().enumerate() {
            inputs.insert(format!("w{k}"), *wv);
        }
        for (r, row) in grid.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("g{r}_{c}"), *v);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = stencil::stencil2d_reference(&grid, &w);
        for r in 1..4 {
            for c in 1..4 {
                let got = out[&format!("o{r}_{c}")];
                assert!((got - expected[r][c]).abs() < 1e-8, "cell ({r}, {c})");
            }
        }
    }
}
