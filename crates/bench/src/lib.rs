//! Shared helpers for the figure-regeneration benchmarks.
//!
//! The benches live in `benches/`: `figures` regenerates every evaluation
//! figure, `tables` every table, `components` measures the analysis
//! kernels in isolation, and `ablations` quantifies the design decisions
//! called out in DESIGN.md. They run on the dependency-free [`harness`]
//! module — a Criterion-shaped wall-clock timer that works in offline
//! build environments where no registry crates resolve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod harness;

use accelerator_wall::prelude::*;

/// Regenerates the complete Fig. 14 attribution grid (both metrics, all
/// 16 workloads) over the given sweep space and returns the geometric-mean
/// total gains — the heavy path the attribution benches exercise.
pub fn fig14_grid(space: &SweepSpace) -> (f64, f64) {
    use accelerator_wall::accelsim::attribution::Metric;
    let mut perf_log = 0.0;
    let mut ee_log = 0.0;
    for &w in Workload::all() {
        let dfg = w.default_instance();
        // lint:allow(no-panic-paths): bench harness; aborting the bench on a broken sweep is the desired behavior
        let p = attribute_gains(&dfg, Metric::Performance, space).expect("sweep runs");
        // lint:allow(no-panic-paths): bench harness; aborting the bench on a broken sweep is the desired behavior
        let e = attribute_gains(&dfg, Metric::EnergyEfficiency, space).expect("sweep runs");
        perf_log += p.total_gain.ln();
        ee_log += e.total_gain.ln();
    }
    let n = Workload::all().len() as f64;
    ((perf_log / n).exp(), (ee_log / n).exp())
}

/// Projects all eight accelerator walls and returns the sum of headrooms
/// (a scalar the optimizer cannot elide).
pub fn all_walls() -> f64 {
    let mut acc = 0.0;
    for &d in Domain::all() {
        for m in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
            // lint:allow(no-panic-paths): bench harness; aborting the bench on a broken projection is the desired behavior
            let w = accelerator_wall(d, m).expect("walls project");
            acc += w.further_linear + w.further_log;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run() {
        let (p, e) = fig14_grid(&SweepSpace::coarse());
        assert!(p > 1.0 && e > 1.0);
        assert!(all_walls() > 8.0);
    }
}
