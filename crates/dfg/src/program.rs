//! [`Program`]: the lowered, flat structure-of-arrays form of a [`Dfg`].
//!
//! A built [`Dfg`] is a pointer-rich front-end object: nodes own `String`
//! names and `Vec<NodeId>` operand lists, and every consumer walks them
//! through an indirection per edge. The hot paths — the interpreter, the
//! list scheduler, and the Table III sweep — touch every vertex and edge
//! thousands of times, so [`Dfg::lower`](crate::Dfg::lower) compiles the
//! graph once into this immutable structure-of-arrays bytecode program:
//!
//! * parallel arrays indexed by dense `u32` vertex id — one byte-sized
//!   [`VertexClass`] flag and one [`Op`] opcode per vertex;
//! * the edge table flattened into two CSR (compressed sparse row) pools:
//!   `operands(v)` and `consumers(v)` are contiguous slices, no per-node
//!   allocation;
//! * precomputed ASAP levels, remaining-path heights (the unit-latency
//!   scheduler priorities), and summary [`DfgStats`];
//! * input/output *slot maps* replacing string keys: [`Program::run`]
//!   takes positional values and never hashes a name.
//!
//! Vertex ids ascend in a topological order (inherited from the builder,
//! which only accepts operands that already exist), so a single forward
//! pass over the arrays visits producers before consumers and a single
//! backward pass visits consumers before producers. Everything here is
//! read-only after lowering: one `Arc<Program>` is shared by all sweep
//! workers without locks or clones.

use crate::analysis::DfgStats;
use crate::graph::Op;
use crate::{DfgError, Result};
use std::collections::HashMap;

/// The paper's vertex taxonomy, flattened to one byte per vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum VertexClass {
    /// An input variable (no incoming edges).
    Input = 0,
    /// A computation vertex; its opcode is in [`Program::opcode`].
    Compute = 1,
    /// An output variable (no outgoing edges), forwarding its operand.
    Output = 2,
}

/// An immutable lowered dataflow program. Construct through
/// [`Dfg::lower`](crate::Dfg::lower).
///
/// ```
/// use accelwall_dfg::{DfgBuilder, Op, VertexClass};
/// let mut b = DfgBuilder::new("tiny");
/// let x = b.input("x");
/// let y = b.input("y");
/// let s = b.op(Op::Add, &[x, y]);
/// b.output("o", s);
/// let p = b.build().unwrap().lower();
/// assert_eq!(p.vertex_count(), 4);
/// assert_eq!(p.class(2), VertexClass::Compute);
/// assert_eq!(p.operands(2), &[0, 1]);
/// assert_eq!(p.consumers(0), &[2]);
/// assert_eq!(p.run(&[2.0, 3.0]).unwrap(), vec![5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub(crate) name: String,
    /// Per-vertex taxonomy flag, id order.
    pub(crate) classes: Vec<VertexClass>,
    /// Per-vertex opcode; [`Op::Copy`] for input and output vertices
    /// (both forward a value unchanged).
    pub(crate) opcodes: Vec<Op>,
    /// CSR row offsets into [`Program::operand_pool`], length `n + 1`.
    pub(crate) operand_offsets: Vec<u32>,
    /// Flat in-edge table: operand ids of vertex `v` are
    /// `operand_pool[operand_offsets[v]..operand_offsets[v + 1]]`.
    pub(crate) operand_pool: Vec<u32>,
    /// CSR row offsets into [`Program::consumer_pool`], length `n + 1`.
    pub(crate) consumer_offsets: Vec<u32>,
    /// Flat out-edge table, each row ascending by consumer id.
    pub(crate) consumer_pool: Vec<u32>,
    /// ASAP level of every vertex (inputs at 0).
    pub(crate) levels: Vec<u32>,
    /// Remaining-path height of every vertex: the vertex count of the
    /// longest path from it to any sink — the unit-latency scheduling
    /// priority the list scheduler scales by per-config op latencies.
    pub(crate) heights: Vec<u32>,
    /// Input slots `(name, vertex id)`, ascending by id; positional
    /// argument order of [`Program::run`].
    pub(crate) input_slots: Vec<(String, u32)>,
    /// Output slots `(name, vertex id)`, ascending by id; positional
    /// result order of [`Program::run`].
    pub(crate) output_slots: Vec<(String, u32)>,
    /// Registered lookup tables for [`Op::Lut`].
    pub(crate) tables: Vec<[u8; 256]>,
    /// Summary statistics, precomputed at lowering time.
    pub(crate) stats: DfgStats,
}

impl Program {
    /// The program's name (workload identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total vertex count `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.classes.len()
    }

    /// Total edge count `|E|`.
    pub fn edge_count(&self) -> usize {
        self.operand_pool.len()
    }

    /// The taxonomy flag of vertex `v`.
    pub fn class(&self, v: usize) -> VertexClass {
        self.classes[v]
    }

    /// All taxonomy flags, id order.
    pub fn classes(&self) -> &[VertexClass] {
        &self.classes
    }

    /// The opcode of vertex `v` ([`Op::Copy`] for inputs and outputs).
    pub fn opcode(&self, v: usize) -> Op {
        self.opcodes[v]
    }

    /// All opcodes, id order.
    pub fn opcodes(&self) -> &[Op] {
        &self.opcodes
    }

    /// The ordered operand ids of vertex `v`, as a contiguous slice.
    pub fn operands(&self, v: usize) -> &[u32] {
        &self.operand_pool[self.operand_offsets[v] as usize..self.operand_offsets[v + 1] as usize]
    }

    /// The consumer ids of vertex `v` (vertices using `v` as an operand,
    /// with multiplicity), ascending, as a contiguous slice.
    pub fn consumers(&self, v: usize) -> &[u32] {
        &self.consumer_pool
            [self.consumer_offsets[v] as usize..self.consumer_offsets[v + 1] as usize]
    }

    /// ASAP level of every vertex, id order (inputs at level 0).
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Remaining-path height of every vertex: vertices on the longest
    /// path from it to any sink. Sources with the largest height lie on
    /// the program's critical path; the list scheduler's latency-weighted
    /// priorities are this skeleton with each vertex's unit cost replaced
    /// by its per-config latency.
    pub fn heights(&self) -> &[u32] {
        &self.heights
    }

    /// Input slots `(name, vertex id)`, ascending by id. The positional
    /// argument order of [`Program::run`].
    pub fn input_slots(&self) -> &[(String, u32)] {
        &self.input_slots
    }

    /// Output slots `(name, vertex id)`, ascending by id. The positional
    /// result order of [`Program::run`].
    pub fn output_slots(&self) -> &[(String, u32)] {
        &self.output_slots
    }

    /// The lookup table registered under `table`, if any.
    pub fn table(&self, table: u8) -> Option<&[u8; 256]> {
        self.tables.get(table as usize)
    }

    /// Summary statistics, precomputed once at lowering time.
    pub fn stats(&self) -> DfgStats {
        self.stats
    }

    /// Approximate resident size of the lowered arrays in bytes — the
    /// footprint one sweep worker shares, exported as a `/metrics` gauge.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.classes.len() * size_of::<VertexClass>()
            + self.opcodes.len() * size_of::<Op>()
            + (self.operand_offsets.len()
                + self.operand_pool.len()
                + self.consumer_offsets.len()
                + self.consumer_pool.len()
                + self.levels.len()
                + self.heights.len())
                * size_of::<u32>()
            + self
                .input_slots
                .iter()
                .chain(&self.output_slots)
                .map(|(name, _)| name.len() + size_of::<u32>())
                .sum::<usize>()
            + self.tables.len() * 256
    }

    /// Evaluates the program positionally: `inputs[k]` feeds the `k`-th
    /// [input slot](Program::input_slots), and the result vector holds
    /// one value per [output slot](Program::output_slots), in order. No
    /// string keys are touched — this is the hot-loop entry point.
    ///
    /// # Errors
    ///
    /// * [`DfgError::MissingInput`] when `inputs` is shorter than the
    ///   input slot map (naming the first unfed slot).
    /// * [`DfgError::NonFiniteValue`] when an operation produces NaN or
    ///   infinity (for example division by zero).
    pub fn run(&self, inputs: &[f64]) -> Result<Vec<f64>> {
        if inputs.len() < self.input_slots.len() {
            let (name, _) = &self.input_slots[inputs.len()];
            return Err(DfgError::MissingInput(name.clone()));
        }
        let mut values = vec![0.0f64; self.vertex_count()];
        let mut outputs = Vec::with_capacity(self.output_slots.len());
        let mut next_input = 0usize;
        for v in 0..self.vertex_count() {
            let value = match self.classes[v] {
                VertexClass::Input => {
                    let fed = inputs[next_input];
                    next_input += 1;
                    fed
                }
                VertexClass::Compute => self.apply(v, &values),
                VertexClass::Output => {
                    let forwarded = values[self.operands(v)[0] as usize];
                    outputs.push(forwarded);
                    forwarded
                }
            };
            if !value.is_finite() {
                return Err(DfgError::NonFiniteValue { node: v });
            }
            values[v] = value;
        }
        Ok(outputs)
    }

    /// One opcode dispatch of the register machine: applies vertex `v`'s
    /// operation to its operands' values. Semantically identical to the
    /// legacy tree-walker's dispatch, operand for operand.
    pub(crate) fn apply(&self, v: usize, values: &[f64]) -> f64 {
        let args = self.operands(v);
        let arg = |k: usize| values[args[k] as usize];
        let bits = |x: f64| x as u64;
        match self.opcodes[v] {
            Op::Add => arg(0) + arg(1),
            Op::Sub => arg(0) - arg(1),
            Op::Mul => arg(0) * arg(1),
            Op::Div => arg(0) / arg(1),
            Op::Mod => arg(0).rem_euclid(arg(1)),
            Op::Min => arg(0).min(arg(1)),
            Op::Max => arg(0).max(arg(1)),
            Op::Abs => arg(0).abs(),
            Op::Neg => -arg(0),
            Op::Sqrt => arg(0).sqrt(),
            Op::And => (bits(arg(0)) & bits(arg(1))) as f64,
            Op::Or => (bits(arg(0)) | bits(arg(1))) as f64,
            Op::Xor => (bits(arg(0)) ^ bits(arg(1))) as f64,
            Op::Not => (!(bits(arg(0)) as u32)) as f64,
            Op::Shl => ((bits(arg(0))) << (bits(arg(1)) & 63)) as f64,
            Op::Shr => ((bits(arg(0))) >> (bits(arg(1)) & 63)) as f64,
            Op::CmpLt => f64::from(arg(0) < arg(1)),
            Op::CmpEq => f64::from(arg(0) == arg(1)),
            Op::Select => {
                if arg(0) != 0.0 {
                    arg(1)
                } else {
                    arg(2)
                }
            }
            Op::Sigmoid => 1.0 / (1.0 + (-arg(0)).exp()),
            Op::Lut { table } => {
                // lint:allow(no-panic-paths): DfgBuilder::build validates every Lut op's table id before a graph can exist
                let t = self.table(table).expect("lut table registered at build");
                t[(bits(arg(0)) & 0xff) as usize] as f64
            }
            Op::Copy => arg(0),
        }
    }

    /// Evaluates the program for one set of input values keyed by input
    /// variable name; returns the output variable values keyed by name.
    /// The named counterpart of [`Program::run`], kept API-compatible
    /// with the front-end interpreter.
    ///
    /// # Errors
    ///
    /// * [`DfgError::MissingInput`] when `inputs` lacks a named input.
    /// * [`DfgError::NonFiniteValue`] when an operation produces NaN or
    ///   infinity.
    pub fn evaluate(&self, inputs: &HashMap<String, f64>) -> Result<HashMap<String, f64>> {
        let mut values = vec![0.0f64; self.vertex_count()];
        let mut outputs = HashMap::new();
        let mut next_input = 0usize;
        let mut next_output = 0usize;
        for v in 0..self.vertex_count() {
            let value = match self.classes[v] {
                VertexClass::Input => {
                    let (name, _) = &self.input_slots[next_input];
                    next_input += 1;
                    *inputs
                        .get(name)
                        .ok_or_else(|| DfgError::MissingInput(name.clone()))?
                }
                VertexClass::Compute => self.apply(v, &values),
                VertexClass::Output => {
                    let (name, _) = &self.output_slots[next_output];
                    next_output += 1;
                    let forwarded = values[self.operands(v)[0] as usize];
                    outputs.insert(name.clone(), forwarded);
                    forwarded
                }
            };
            if !value.is_finite() {
                return Err(DfgError::NonFiniteValue { node: v });
            }
            values[v] = value;
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Op};

    fn fig11() -> Program {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        b.build().unwrap().lower()
    }

    #[test]
    fn csr_tables_mirror_the_graph() {
        let p = fig11();
        assert_eq!(p.vertex_count(), 9);
        assert_eq!(p.edge_count(), 10);
        // d2 feeds both stage-1 ops.
        assert_eq!(p.consumers(1), &[3, 4]);
        // s2a reads s1a and s1b.
        assert_eq!(p.operands(5), &[3, 4]);
        // Inputs have no operands; outputs no consumers.
        assert!(p.operands(0).is_empty());
        assert!(p.consumers(7).is_empty());
        // Row lengths sum to the edge count on both sides.
        let in_edges: usize = (0..p.vertex_count()).map(|v| p.operands(v).len()).sum();
        let out_edges: usize = (0..p.vertex_count()).map(|v| p.consumers(v).len()).sum();
        assert_eq!(in_edges, p.edge_count());
        assert_eq!(out_edges, p.edge_count());
    }

    #[test]
    fn classes_and_slots_agree() {
        let p = fig11();
        assert_eq!(p.class(0), VertexClass::Input);
        assert_eq!(p.class(3), VertexClass::Compute);
        assert_eq!(p.class(8), VertexClass::Output);
        assert_eq!(
            p.input_slots()
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            vec!["d1", "d2", "d3"]
        );
        assert_eq!(p.output_slots()[1], ("o2".to_string(), 8));
    }

    #[test]
    fn heights_measure_remaining_paths() {
        let p = fig11();
        // d2 -> s1b -> s2a/s2b -> output: 4 vertices.
        assert_eq!(p.heights()[1], 4);
        // Outputs are sinks.
        assert_eq!(p.heights()[7], 1);
        // Max height over sources equals the depth.
        let max: u32 = p.heights().iter().copied().max().unwrap_or(0);
        assert_eq!(max as usize, p.stats().depth);
    }

    #[test]
    fn run_matches_named_evaluation() {
        let p = fig11();
        let named = p
            .evaluate(&HashMap::from([
                ("d1".to_string(), 6.0),
                ("d2".to_string(), 4.0),
                ("d3".to_string(), 2.0),
            ]))
            .unwrap();
        let positional = p.run(&[6.0, 4.0, 2.0]).unwrap();
        assert_eq!(positional, vec![named["o1"], named["o2"]]);
        assert_eq!(positional[0], (6.0 + 4.0) - 4.0 / 2.0);
    }

    #[test]
    fn run_reports_the_first_unfed_slot() {
        let p = fig11();
        assert_eq!(
            p.run(&[1.0, 2.0]),
            Err(DfgError::MissingInput("d3".to_string()))
        );
    }

    #[test]
    fn size_bytes_is_positive_and_scales() {
        let small = fig11();
        let mut b = DfgBuilder::new("big");
        let xs: Vec<_> = (0..64).map(|i| b.input(format!("x{i}"))).collect();
        let r = b.reduce(Op::Add, &xs);
        b.output("o", r);
        let big = b.build().unwrap().lower();
        assert!(small.size_bytes() > 0);
        assert!(big.size_bytes() > small.size_bytes());
    }

    #[test]
    fn lut_tables_survive_lowering() {
        let mut b = DfgBuilder::new("lut");
        let mut table = [0u8; 256];
        table[9] = 77;
        let t = b.register_table(table);
        let x = b.input("x");
        let r = b.op(Op::Lut { table: t }, &[x]);
        b.output("y", r);
        let p = b.build().unwrap().lower();
        assert_eq!(p.run(&[9.0]).unwrap(), vec![77.0]);
        assert_eq!(p.table(0).unwrap()[9], 77);
    }
}
