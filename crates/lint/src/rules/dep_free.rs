//! `dep-free` — the workspace builds with the standard library alone.
//!
//! The repo's build environments cannot reach a registry, so every
//! dependency in every `Cargo.toml` must resolve inside the workspace:
//! either `path = "..."` or `workspace = true` (whose definition is
//! itself a path). Version, git, and registry dependencies are findings.
//!
//! The rule parses the small TOML subset Cargo manifests actually use —
//! `[section]` headers, `key = value` pairs, inline `{ ... }` tables,
//! and `[dependencies.name]` subsections — with the same zero-dependency
//! discipline it enforces.

use crate::workspace::Workspace;
use crate::{Finding, Lint};

/// See the module docs.
pub struct DepFree;

impl Lint for DepFree {
    fn name(&self) -> &'static str {
        "dep-free"
    }

    fn description(&self) -> &'static str {
        "every Cargo.toml dependency is path/workspace-internal; no registry or git deps"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for manifest in &ws.manifests {
            let mut section = String::new();
            for (idx, raw) in manifest.text.lines().enumerate() {
                let line_no = idx + 1;
                let line = strip_toml_comment(raw).trim().to_string();
                if line.is_empty() {
                    continue;
                }
                if line.starts_with('[') {
                    section = line
                        .trim_start_matches('[')
                        .trim_end_matches(']')
                        .trim_matches('"')
                        .to_string();
                    // A `[dependencies.foo]` subsection declares one dep;
                    // audit its body as a whole.
                    if let Some(dep) = dep_subsection_name(&section) {
                        let body = subsection_body(&manifest.text, idx);
                        if !body_is_internal(&body) {
                            findings.push(Finding {
                                rule: self.name(),
                                path: manifest.rel_path.clone(),
                                line: line_no,
                                col: 1,
                                message: external_message(dep),
                            });
                        }
                    }
                    continue;
                }
                if !is_dep_section(&section) {
                    continue;
                }
                let Some((name, value)) = line.split_once('=') else {
                    continue;
                };
                let (name, value) = (name.trim(), value.trim());
                if !entry_is_internal(value) {
                    findings.push(Finding {
                        rule: self.name(),
                        path: manifest.rel_path.clone(),
                        line: line_no,
                        col: 1,
                        message: external_message(name),
                    });
                }
            }
        }
        findings
    }
}

fn external_message(name: &str) -> String {
    format!(
        "dependency `{name}` is external; only `path = ...` or `workspace = true` \
         dependencies are allowed (the workspace builds offline, std-only)"
    )
}

/// `dependencies`, `dev-dependencies`, `build-dependencies`,
/// `workspace.dependencies`, and any `target.*.dependencies` variant.
fn is_dep_section(section: &str) -> bool {
    let last = section.rsplit('.').next().unwrap_or(section);
    matches!(
        last,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    ) && dep_subsection_name(section).is_none()
}

/// For `[dependencies.foo]`-style headers, the dependency name.
fn dep_subsection_name(section: &str) -> Option<&str> {
    for kind in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(at) = section.find(kind) {
            let name = &section[at + kind.len()..];
            if !name.is_empty() && !name.contains('.') {
                return Some(name);
            }
        }
    }
    None
}

/// The lines of a subsection starting after header line `header_idx`,
/// up to the next `[` header.
fn subsection_body(text: &str, header_idx: usize) -> Vec<String> {
    text.lines()
        .skip(header_idx + 1)
        .map(|l| strip_toml_comment(l).trim().to_string())
        .take_while(|l| !l.starts_with('['))
        .collect()
}

/// Whether a `key = value` dependency value stays inside the workspace.
fn entry_is_internal(value: &str) -> bool {
    if let Some(body) = value.strip_prefix('{') {
        let entries: Vec<String> = body
            .trim_end_matches('}')
            .split(',')
            .map(|e| e.trim().to_string())
            .collect();
        return body_is_internal(&entries);
    }
    // A bare string (`foo = "1.0"`) or anything else is a registry dep.
    false
}

fn body_is_internal(lines: &[String]) -> bool {
    let has = |key: &str| {
        lines
            .iter()
            .any(|l| l.split('=').next().map(str::trim) == Some(key))
    };
    if has("git") || has("registry") || has("version") {
        // `version` alongside `path` is legal for publishing, but this
        // workspace never publishes; keep the policy strict and simple.
        return false;
    }
    has("path")
        || lines
            .iter()
            .any(|l| l.replace(' ', "").starts_with("workspace=true"))
}

/// Drops a `#` comment, respecting `"`-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace_full;

    fn check(toml: &str) -> Vec<Finding> {
        DepFree.check(&workspace_full(&[], &[("crates/x/Cargo.toml", toml)], None))
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let toml = "[package]\nname = \"x\"\n\n[dependencies]\n\
                    accelwall-stats = { workspace = true }\n\
                    accelwall-cmos = { path = \"../cmos\" }\n\n\
                    [dev-dependencies]\naccelerator-wall = { workspace = true }\n";
        assert!(check(toml).is_empty());
    }

    #[test]
    fn version_string_and_git_deps_fail() {
        let toml = "[dependencies]\n\
                    serde = \"1.0\"\n\
                    rand = { version = \"0.8\", features = [\"std\"] }\n\
                    left-pad = { git = \"https://example.com/x.git\" }\n";
        let found = check(toml);
        assert_eq!(found.len(), 3);
        assert!(found[0].message.contains("serde"));
        assert_eq!(found[0].line, 2);
        assert_eq!(found[2].line, 4);
    }

    #[test]
    fn dep_subsections_are_audited() {
        let good = "[dependencies.accelwall-stats]\nworkspace = true\n";
        assert!(check(good).is_empty());
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        let found = check(bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("serde"));
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let toml = "[package]\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
                    [workspace.package]\nversion = \"0.1.0\"\n\n\
                    [features]\ndefault = []\n\n\
                    [[bench]]\nname = \"serve\"\nharness = false\n";
        assert!(check(toml).is_empty());
    }

    #[test]
    fn workspace_dependency_table_is_checked_too() {
        let toml = "[workspace.dependencies]\n\
                    accelwall-stats = { path = \"crates/stats\" }\n\
                    serde_json = \"1\"\n";
        let found = check(toml);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("serde_json"));
    }

    #[test]
    fn comments_do_not_confuse_the_parser() {
        let toml = "[dependencies] # the deps\n\
                    x = { path = \"../x\" } # ok: in-tree\n";
        assert!(check(toml).is_empty());
    }
}
