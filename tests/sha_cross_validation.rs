//! Cross-validation of the Bitcoin study: simulate the real SHA-256 kernel
//! across the miner nodes and check the model explains the measured gains
//! up to the CSR factor the paper reports.

use accelerator_wall::accelsim::{simulate, DesignConfig};
use accelerator_wall::studies::bitcoin;
use accelerator_wall::workloads::sha;

#[test]
fn simulated_kernel_tracks_empirical_miner_gains() {
    let dfg = sha::build(64);
    let asics = bitcoin::asic_miners();
    let base = &asics[0];
    let config_at = |node| DesignConfig::new(node, 4096, 5, true);
    let base_gain =
        simulate(&dfg, &config_at(base.node)).unwrap().throughput() * base.node.density_rel();
    for m in &asics {
        let r = simulate(&dfg, &config_at(m.node)).unwrap();
        let simulated = r.throughput() * m.node.density_rel() / base_gain;
        let measured = m.ghash_per_s_per_mm2() / base.ghash_per_s_per_mm2();
        let ratio = measured / simulated;
        // Discrepancy = design skill (CSR), which the paper bounds near 2x
        // for the ASIC era.
        assert!(
            (0.3..3.0).contains(&ratio),
            "{}: measured {measured:.1} vs simulated {simulated:.1}",
            m.name
        );
    }
}

#[test]
fn sha_gains_are_node_monotone() {
    // Simulated per-silicon throughput improves with every node jump the
    // miner dataset took.
    let dfg = sha::build(64);
    let mut last = 0.0;
    for node in [
        accelerator_wall::cmos::TechNode::N130,
        accelerator_wall::cmos::TechNode::N110,
        accelerator_wall::cmos::TechNode::N55,
        accelerator_wall::cmos::TechNode::N28,
        accelerator_wall::cmos::TechNode::N16,
    ] {
        let r = simulate(&dfg, &DesignConfig::new(node, 4096, 5, true)).unwrap();
        let gain = r.throughput() * node.density_rel();
        assert!(gain > last, "{node}");
        last = gain;
    }
}

#[test]
fn confined_domain_has_no_multiplier_headroom() {
    // Section IV-E: Bitcoin mining is a confined computation — a fixed
    // boolean/adder lattice. The DFG shows it: no multiply/divide units,
    // and the round recurrence caps parallelism far below the op count.
    let dfg = sha::build(64);
    let stats = dfg.stats();
    assert!(stats.max_stage_width < stats.computes / 10);
    let uses_mul = dfg.compute_ids().iter().any(|&id| {
        matches!(
            dfg.node(id).kind,
            accelerator_wall::dfg::NodeKind::Compute(
                accelerator_wall::dfg::Op::Mul | accelerator_wall::dfg::Op::Div
            )
        )
    });
    assert!(!uses_mul);
}
