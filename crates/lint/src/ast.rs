//! The item tree the recursive-descent parser produces.
//!
//! The semantic rules (`atomic-ordering`, `lock-order`, `determinism`,
//! `bounded-channel`) need more shape than a token stream offers: which
//! function a call sits in, what type a struct field has, what a `use`
//! brings into scope. A full Rust AST would be wildly out of proportion
//! (and `dep-free` forbids pulling in `syn`), so [`crate::parser`]
//! produces this deliberately lightweight tree instead:
//!
//! * items carry their name, kind, and the token range of their
//!   brace-matched body — bodies are *not* parsed into statements;
//!   rules scan the body's token slice with [`crate::parser::calls_in`];
//! * struct fields and `fn` parameters keep their declared type as the
//!   joined token text, enough for `contains("AtomicU64")`-style
//!   classification;
//! * all positions are indices into the *code* token view
//!   ([`crate::SourceFile::code_tokens`]), so comments never perturb
//!   ranges.
//!
//! Anything the parser cannot classify becomes a [`ParseError`]
//! recovery (skip one token, keep going) rather than an abort; the
//! workspace gate asserts the real tree parses with zero recoveries.

/// A 1-based source position, for anchoring findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// What an [`Item`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free, impl method, or trait method).
    Fn,
    /// `struct`, with [`Item::fields`] populated for brace structs.
    Struct,
    /// `enum` or `union`; variants are not parsed.
    Enum,
    /// `trait`, with its methods as [`Item::children`].
    Trait,
    /// `impl` block; [`Item::name`] is the self type,
    /// [`Item::trait_name`] the implemented trait if any.
    Impl,
    /// `const` or `static` item.
    Const,
    /// `use` declaration; [`Item::name`] is the joined path text.
    Use,
    /// `mod`, with its items as [`Item::children`] when inline.
    Mod,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition or an item-level macro invocation.
    Macro,
    /// `extern crate` or an `extern "abi" { ... }` block.
    Extern,
}

/// A named, typed slot: a struct field or an `fn` parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// The field or binding name.
    pub name: String,
    /// The declared type as space-joined token text
    /// (`"Arc < Vec < u8 > >"`).
    pub ty: String,
    /// Where the name token sits.
    pub span: Span,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The item class.
    pub kind: ItemKind,
    /// The item's name: fn/struct/mod/const name, impl self type,
    /// joined path text for `use`.
    pub name: String,
    /// For `impl Trait for Type`, the trait's name.
    pub trait_name: Option<String>,
    /// Position of the introducing keyword (or name) token.
    pub span: Span,
    /// Code-token indices of the body's `{` and matching `}`, when the
    /// item has a brace body the parser did not descend into (fn bodies,
    /// enum bodies). `impl`/`trait`/`mod` bodies are descended into via
    /// [`Item::children`] instead.
    pub body: Option<(usize, usize)>,
    /// Struct fields (brace structs) or `fn` parameters.
    pub fields: Vec<Field>,
    /// Nested items: impl/trait members, inline-mod items.
    pub children: Vec<Item>,
}

impl Item {
    pub(crate) fn new(kind: ItemKind, name: String, span: Span) -> Item {
        Item {
            kind,
            name,
            trait_name: None,
            span,
            body: None,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }
}

/// A token the parser could not fit into the item grammar; it skipped
/// one token and resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the unparseable token sits.
    pub span: Span,
    /// The token text and what was expected.
    pub message: String,
}

/// The parse result for one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedFile {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
    /// Every recovery the parser performed; empty on a clean parse.
    pub recoveries: Vec<ParseError>,
}

impl ParsedFile {
    /// Every item in the tree, depth-first, including nested ones.
    pub fn walk(&self) -> Vec<&Item> {
        fn visit<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for item in items {
                out.push(item);
                visit(&item.children, out);
            }
        }
        let mut out = Vec::new();
        visit(&self.items, &mut out);
        out
    }

    /// Every `fn` in the tree (free fns, impl methods, trait defaults)
    /// that has a body.
    pub fn fns_with_bodies(&self) -> Vec<&Item> {
        self.walk()
            .into_iter()
            .filter(|i| i.kind == ItemKind::Fn && i.body.is_some())
            .collect()
    }
}

/// One call site extracted from a body's token range: a method call
/// (`recv.a.b.method(args)`) or a path/bare call (`mpsc::channel()`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// Receiver segments, outermost first: `self.inner.cursor.load(..)`
    /// yields `["self", "inner", "cursor"]`; call segments render as
    /// `"name()"`. Path calls keep the path segments
    /// (`["mpsc"]` for `mpsc::channel(..)`); bare calls are empty.
    pub chain: Vec<String>,
    /// The called name (`load`, `channel`).
    pub method: String,
    /// True for `.method(...)`, false for `path::call(...)` / bare.
    pub is_method: bool,
    /// Code-token index of the opening `(`.
    pub open: usize,
    /// Code-token index of the matching `)`.
    pub close: usize,
    /// Top-level argument ranges `[start, end)` between the parens,
    /// split at commas outside nested brackets and closure pipes.
    pub args: Vec<(usize, usize)>,
    /// Position of the called-name token.
    pub span: Span,
}
