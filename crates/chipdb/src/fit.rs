//! The two corpus regressions of Figs. 3b and 3c.

use crate::ChipRecord;
use accelwall_cmos::TechNode;
use accelwall_stats::{PowerLaw, RegressionSums, Result, StatsError};
use std::fmt;
use std::sync::Arc;

/// Observations per accumulation chunk of the parallel log-log fits.
/// Fixed so the partial-sum tree — and therefore every fitted
/// coefficient bit — is independent of thread count.
const FIT_CHUNK: usize = 256;

/// OLS power-law fit `y = c · x^e` with the log-space sums accumulated
/// in parallel chunks and combined by a tree reduction. The chunking is
/// fixed ([`FIT_CHUNK`]), so the result is deterministic across thread
/// counts; it agrees with [`PowerLaw::fit`] up to float rounding.
fn power_law_fit_par(xs: Vec<f64>, ys: Vec<f64>) -> Result<PowerLaw> {
    let n = xs.len();
    let xs = Arc::new(xs);
    let ys = Arc::new(ys);
    let folded = accelwall_par::par_map_reduce(
        n,
        FIT_CHUNK,
        move |range| {
            let mut sums = RegressionSums::default();
            let mut nonpositive = false;
            for i in range {
                if xs[i] <= 0.0 || ys[i] <= 0.0 {
                    nonpositive = true;
                } else {
                    sums.push(xs[i].ln(), ys[i].ln());
                }
            }
            (sums, nonpositive)
        },
        |(a, a_bad), (b, b_bad)| (a.merge(b), a_bad || b_bad),
    );
    let Some((sums, nonpositive)) = folded else {
        return Err(StatsError::NotEnoughData {
            provided: 0,
            required: 2,
        });
    };
    if nonpositive {
        return Err(StatsError::DomainViolation {
            what: "power-law fit requires strictly positive x and y",
        });
    }
    let line = sums.linear()?;
    Ok(PowerLaw {
        coefficient: line.intercept.exp(),
        exponent: line.slope,
        r_squared: line.r_squared,
    })
}

/// The paper's published Fig. 3b fit: `TC(D) = 4.99e9 · D^0.877`.
pub const PAPER_TC_COEFFICIENT: f64 = 4.99e9;
/// Exponent of the published Fig. 3b fit.
pub const PAPER_TC_EXPONENT: f64 = 0.877;

/// The paper's published Fig. 3b transistor-count law as a [`PowerLaw`].
pub static PAPER_TC_LAW: PowerLaw = PowerLaw {
    coefficient: PAPER_TC_COEFFICIENT,
    exponent: PAPER_TC_EXPONENT,
    r_squared: 1.0,
};

/// Fits the Fig. 3b transistor-count law to a corpus: OLS over
/// `(ln D, ln TC)` pairs.
///
/// # Errors
///
/// Propagates [`StatsError`] from the underlying power-law fit (fewer than
/// two records, degenerate density factors, non-positive values).
pub fn transistor_density_fit(corpus: &[ChipRecord]) -> Result<PowerLaw> {
    let ds: Vec<f64> = corpus.iter().map(ChipRecord::density_factor).collect();
    let tcs: Vec<f64> = corpus.iter().map(|r| r.transistors).collect();
    power_law_fit_par(ds, tcs)
}

/// The four node groups of Fig. 3c, newest first as in the figure legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeGroup {
    /// 10 nm – 5 nm (projection-era nodes).
    N10ToN5,
    /// 22 nm – 12 nm.
    N22ToN12,
    /// 32 nm – 28 nm.
    N32ToN28,
    /// 55 nm – 40 nm.
    N55ToN40,
}

impl NodeGroup {
    /// All groups, newest first (the order of the Fig. 3c legend).
    pub fn all() -> &'static [NodeGroup] {
        const ALL: [NodeGroup; 4] = [
            NodeGroup::N10ToN5,
            NodeGroup::N22ToN12,
            NodeGroup::N32ToN28,
            NodeGroup::N55ToN40,
        ];
        &ALL
    }

    /// The group a node belongs to, if any (65 nm and older chips predate
    /// the TDP-limited regime the paper models).
    pub fn of(node: TechNode) -> Option<NodeGroup> {
        let nm = node.nanometers();
        if (5.0..=10.0).contains(&nm) {
            Some(NodeGroup::N10ToN5)
        } else if (12.0..=22.0).contains(&nm) {
            Some(NodeGroup::N22ToN12)
        } else if (28.0..=32.0).contains(&nm) {
            Some(NodeGroup::N32ToN28)
        } else if (40.0..=55.0).contains(&nm) {
            Some(NodeGroup::N55ToN40)
        } else {
            None
        }
    }

    /// The paper's published Fig. 3c law for this group:
    /// `transistors[G] × f[GHz] = c · TDP^e`.
    pub fn paper_tdp_law(self) -> PowerLaw {
        // Coefficients printed on Fig. 3c. Newer groups pack more switching
        // capacity at a given TDP (larger c) but saturate faster with power
        // (smaller e) — the dark-silicon squeeze.
        let (c, e) = match self {
            NodeGroup::N10ToN5 => (2.15, 0.402),
            NodeGroup::N22ToN12 => (0.49, 0.557),
            NodeGroup::N32ToN28 => (0.11, 0.729),
            NodeGroup::N55ToN40 => (0.02, 0.869),
        };
        PowerLaw::new(c, e)
    }

    /// Representative node used when evaluating the group's law for
    /// projections (the newest member, as the paper projects with 5 nm).
    pub fn newest_node(self) -> TechNode {
        match self {
            NodeGroup::N10ToN5 => TechNode::N5,
            NodeGroup::N22ToN12 => TechNode::N12,
            NodeGroup::N32ToN28 => TechNode::N28,
            NodeGroup::N55ToN40 => TechNode::N40,
        }
    }
}

impl fmt::Display for NodeGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeGroup::N10ToN5 => "10nm-5nm",
            NodeGroup::N22ToN12 => "22nm-12nm",
            NodeGroup::N32ToN28 => "32nm-28nm",
            NodeGroup::N55ToN40 => "55nm-40nm",
        };
        f.write_str(s)
    }
}

/// Extension trait attaching group membership to records.
pub trait GroupExt {
    /// The Fig. 3c node group this record falls in, if any.
    fn node_group(&self) -> Option<NodeGroup>;
}

impl GroupExt for ChipRecord {
    fn node_group(&self) -> Option<NodeGroup> {
        NodeGroup::of(self.node)
    }
}

/// Fits the Fig. 3c TDP law for one node group over a corpus:
/// OLS on `(ln TDP, ln (transistors[G] × f[GHz]))` restricted to the group.
///
/// # Errors
///
/// [`StatsError::NotEnoughData`] if fewer than two corpus records fall in
/// the group; other [`StatsError`] values propagate from the fit.
pub fn tdp_fit(corpus: &[ChipRecord], group: NodeGroup) -> Result<PowerLaw> {
    let members: Vec<&ChipRecord> = corpus
        .iter()
        .filter(|r| NodeGroup::of(r.node) == Some(group))
        .collect();
    if members.len() < 2 {
        return Err(StatsError::NotEnoughData {
            provided: members.len(),
            required: 2,
        });
    }
    let tdps: Vec<f64> = members.iter().map(|r| r.tdp_w).collect();
    let caps: Vec<f64> = members.iter().map(|r| r.switching_capacity()).collect();
    power_law_fit_par(tdps, caps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChipKind;

    fn record(node: TechNode, area: f64, tc: f64, tdp: f64, mhz: f64) -> ChipRecord {
        ChipRecord {
            name: "r".into(),
            kind: ChipKind::Cpu,
            node,
            die_area_mm2: area,
            transistors: tc,
            tdp_w: tdp,
            freq_mhz: mhz,
            year: 2015,
        }
    }

    #[test]
    fn paper_law_matches_published_examples() {
        // Fig. 3b caption: large 5 nm chips (D ≈ 32) reach ~100G transistors.
        let tc = PAPER_TC_LAW.eval(32.0);
        assert!((9e10..1.2e11).contains(&tc), "TC(32) = {tc:e}");
    }

    #[test]
    fn density_fit_recovers_noiseless_law() {
        let corpus: Vec<ChipRecord> = (1..40)
            .map(|i| {
                let area = 20.0 + 20.0 * i as f64;
                let node = if i % 2 == 0 {
                    TechNode::N28
                } else {
                    TechNode::N14
                };
                let d = node.density_factor(area);
                record(node, area, PAPER_TC_LAW.eval(d), 100.0, 2000.0)
            })
            .collect();
        let fit = transistor_density_fit(&corpus).unwrap();
        assert!((fit.exponent - PAPER_TC_EXPONENT).abs() < 1e-9);
        assert!((fit.coefficient / PAPER_TC_COEFFICIENT - 1.0).abs() < 1e-9);
    }

    #[test]
    fn node_groups_partition_modern_nodes() {
        assert_eq!(NodeGroup::of(TechNode::N5), Some(NodeGroup::N10ToN5));
        assert_eq!(NodeGroup::of(TechNode::N16), Some(NodeGroup::N22ToN12));
        assert_eq!(NodeGroup::of(TechNode::N28), Some(NodeGroup::N32ToN28));
        assert_eq!(NodeGroup::of(TechNode::N45), Some(NodeGroup::N55ToN40));
        assert_eq!(NodeGroup::of(TechNode::N65), None);
        assert_eq!(NodeGroup::of(TechNode::N180), None);
    }

    #[test]
    fn newer_groups_pack_more_capacity_at_same_tdp() {
        // Evaluate each group's published law at 120 W: monotone in recency.
        let caps: Vec<f64> = NodeGroup::all()
            .iter()
            .map(|g| g.paper_tdp_law().eval(120.0))
            .collect();
        assert!(
            caps.windows(2).all(|w| w[0] > w[1]),
            "capacity at 120W should decline with group age: {caps:?}"
        );
    }

    #[test]
    fn tdp_fit_recovers_group_law() {
        let law = NodeGroup::N32ToN28.paper_tdp_law();
        let corpus: Vec<ChipRecord> = (1..30)
            .map(|i| {
                let tdp = 20.0 + 25.0 * i as f64;
                let freq_ghz = 2.5;
                let cap = law.eval(tdp); // billions x GHz
                let tc = cap / freq_ghz * 1e9;
                record(TechNode::N28, 200.0, tc, tdp, freq_ghz * 1e3)
            })
            .collect();
        let fit = tdp_fit(&corpus, NodeGroup::N32ToN28).unwrap();
        assert!((fit.exponent - law.exponent).abs() < 1e-9);
        assert!((fit.coefficient / law.coefficient - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tdp_fit_requires_group_members() {
        let corpus = vec![record(TechNode::N180, 100.0, 1e8, 50.0, 500.0)];
        assert!(matches!(
            tdp_fit(&corpus, NodeGroup::N10ToN5),
            Err(StatsError::NotEnoughData { .. })
        ));
    }

    #[test]
    fn group_display_matches_legend() {
        assert_eq!(NodeGroup::N10ToN5.to_string(), "10nm-5nm");
        assert_eq!(NodeGroup::N55ToN40.to_string(), "55nm-40nm");
    }
}
