//! Wall-clock baseline for the distributed work tier.
//!
//! Runs the coarse S3D sweep grid three ways and compares wall time:
//!
//! 1. **local** — `run_local` over the in-process `accelwall-par` pool,
//!    the single-machine baseline and the zero-worker fallback path;
//! 2. **1 worker** — a coordinator plus one in-process worker speaking
//!    the `/work/*` HTTP protocol over loopback;
//! 3. **2 workers** — the same with two workers splitting the units.
//!
//! Workers compute their units serially (parallelism in the work tier
//! comes from fleet width, not from each worker's pool), so on one
//! machine the distributed runs measure protocol and coordination
//! overhead rather than a speedup — the number that matters is how
//! little the lease/heartbeat/fold machinery costs when nothing fails.
//! Every distributed run is asserted byte-identical to the local fold,
//! and the reissue/hedge counters are reported (both 0 on a healthy
//! fleet).
//!
//! The output is one JSON document; `BENCH_work.json` at the repo root
//! records a baseline run (`cargo bench -p accelwall-bench --bench
//! work > BENCH_work.json`).

use accelerator_wall::grids::{run_local, Grid, GridRegistry};
use accelerator_wall::prelude::{ArtifactCache, Ctx, Registry, SweepSpace};
use accelwall_server::{Server, ServerConfig};
use accelwall_work::{run_worker, Coordinator, WorkConfig, WorkStats, WorkerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The grid every mode runs: the coarse-space S3D sweep.
fn sweep_grid() -> Arc<dyn Grid> {
    GridRegistry::standard().get("sweep").expect("sweep grid")
}

fn coarse_ctx() -> Arc<Ctx> {
    Arc::new(Ctx::with_space(SweepSpace::coarse()))
}

/// One coordinated run with `workers` in-process workers over loopback.
/// Returns the wall time, the folded document, and the coordinator's
/// counters.
fn distributed(workers: usize) -> (Duration, String, WorkStats) {
    let config = WorkConfig {
        expect_workers: workers,
        ..WorkConfig::default()
    };
    let coordinator = Arc::new(Coordinator::new(
        sweep_grid(),
        coarse_ctx(),
        "coarse",
        config,
    ));
    let cache = ArtifactCache::new(Registry::paper(), Ctx::new());
    let server_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    };
    let server =
        Server::bind_with_work(server_config, cache, Some(Arc::clone(&coordinator))).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = std::thread::spawn(move || server.run());
    let fleet: Vec<_> = (0..workers)
        .map(|i| {
            let config = WorkerConfig {
                name: format!("bench-{i}"),
                ..WorkerConfig::new(addr.to_string())
            };
            std::thread::spawn(move || run_worker(&config))
        })
        .collect();
    let start = Instant::now();
    let doc = coordinator.run().expect("coordinated run");
    let elapsed = start.elapsed();
    handle.shutdown();
    for worker in fleet {
        worker.join().expect("worker thread").expect("worker run");
    }
    serving.join().expect("server thread").expect("server run");
    (elapsed, doc.pretty(), coordinator.stats())
}

fn ms(d: Duration) -> f64 {
    (d.as_secs_f64() * 1e5).round() / 100.0
}

fn main() {
    // Local baseline (also warms nothing: each mode builds its own Ctx).
    let grid = sweep_grid();
    let ctx = coarse_ctx();
    let local_start = Instant::now();
    let local_doc = run_local(&grid, &ctx).expect("local run").pretty();
    let local = local_start.elapsed();

    let (one, one_doc, one_stats) = distributed(1);
    let (two, two_doc, two_stats) = distributed(2);
    assert_eq!(local_doc, one_doc, "1-worker fold diverged");
    assert_eq!(local_doc, two_doc, "2-worker fold diverged");

    println!("{{");
    println!("  \"bench\": \"work\",");
    println!("  \"grid\": \"sweep\",");
    println!("  \"space\": \"coarse\",");
    println!("  \"units\": {},", one_stats.units_total);
    println!("  \"local_ms\": {},", ms(local));
    println!("  \"one_worker_ms\": {},", ms(one));
    println!("  \"two_worker_ms\": {},", ms(two));
    println!("  \"one_worker_reissues\": {},", one_stats.reissues_total);
    println!("  \"one_worker_hedges\": {},", one_stats.hedges_total);
    println!("  \"two_worker_reissues\": {},", two_stats.reissues_total);
    println!("  \"two_worker_hedges\": {},", two_stats.hedges_total);
    println!("  \"byte_identical\": true");
    println!("}}");
}
