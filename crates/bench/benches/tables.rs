//! One benchmark per paper table.

use accelerator_wall::dfg::{concepts, limits};
use accelerator_wall::prelude::*;
use accelwall_bench::harness::Criterion;
use accelwall_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn table1_concepts(c: &mut Criterion) {
    c.bench_function("table1_tpu_concepts", |b| {
        b.iter(|| {
            let examples = concepts::tpu_examples();
            assert_eq!(examples.len(), 9);
            black_box(examples.iter().map(|e| e.index as u32).sum::<u32>())
        });
    });
}

fn table2_limits(c: &mut Criterion) {
    // Evaluate all nine complexity bounds on every workload's graph.
    let stats: Vec<_> = Workload::all()
        .iter()
        .map(|w| w.default_instance().stats())
        .collect();
    c.bench_function("table2_limits", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for cell in limits::table2() {
                for s in &stats {
                    acc += cell.time.evaluate(s).min(1e30);
                }
            }
            black_box(acc)
        });
    });
}

fn table3_space(c: &mut Criterion) {
    c.bench_function("table3_sweep_space", |b| {
        b.iter(|| {
            let space = SweepSpace::table3();
            assert_eq!(space.len(), 1820);
            black_box(space.configs().count())
        });
    });
}

fn table4_workloads(c: &mut Criterion) {
    // Building all 16 DFGs is Table IV made executable.
    c.bench_function("table4_build_all_workloads", |b| {
        b.iter(|| {
            let mut vertices = 0;
            for &w in Workload::all() {
                vertices += w.default_instance().stats().vertices;
            }
            black_box(vertices)
        });
    });
}

fn table5_domains(c: &mut Criterion) {
    c.bench_function("table5_domain_limits", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &d in Domain::all() {
                let l = d.limits();
                acc += l.max_die_mm2 + l.tdp_w + l.freq_mhz;
            }
            black_box(acc)
        });
    });
}

/// Shared fast-bench configuration: the regeneration paths are
/// deterministic analytics, so a handful of samples with short warmup
/// measures them faithfully while keeping `cargo bench` CI-friendly.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = tables;
    config = fast();
    targets = table1_concepts,
    table2_limits,
    table3_space,
    table4_workloads,
    table5_domains
}
criterion_main!(tables);
