//! The physical-gains roadmap over calendar time.
//!
//! Section II argues that "future processing roadmaps and evaluation
//! methods will become specialization-driven." This module makes the
//! *physical* half of that roadmap concrete: for a fixed chip template
//! (die, clock, TDP), it walks the node introduction years and evaluates
//! the potential model at each year's best available node — producing the
//! historical exponential climb, the slowdown through the 2010s, and the
//! hard flatline after the final (5 nm) node arrives. Everything a domain
//! gains beyond this curve is, by Eq. 1, specialization.

use crate::model::{ChipSpec, PotentialModel};
use accelwall_cmos::TechNode;

/// One year of the physical roadmap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoadmapPoint {
    /// Calendar year.
    pub year: u32,
    /// Best node in volume production that year.
    pub node: TechNode,
    /// Physical throughput gain vs. the template at its first node.
    pub throughput_gain: f64,
    /// Physical energy-efficiency gain vs. the template at its first node.
    pub efficiency_gain: f64,
}

/// Walks the roadmap for a chip template from `from_year` through
/// `to_year`, holding die, clock, and TDP fixed and upgrading the node as
/// the years pass. Years before the first node are skipped.
///
/// After the final node's introduction the curve is exactly flat — the
/// accelerator wall as a time series.
pub fn physical_roadmap(
    model: &PotentialModel,
    template: &ChipSpec,
    from_year: u32,
    to_year: u32,
) -> Vec<RoadmapPoint> {
    let mut points = Vec::new();
    let mut baseline: Option<ChipSpec> = None;
    for year in from_year..=to_year {
        let Some(node) = TechNode::newest_by_year(year) else {
            continue;
        };
        let spec = ChipSpec::new(
            node,
            template.die_area_mm2,
            template.freq_ghz,
            template.tdp_w,
        );
        let base = *baseline.get_or_insert(spec);
        points.push(RoadmapPoint {
            year,
            node,
            throughput_gain: model.throughput_gain(&spec, &base),
            efficiency_gain: model.efficiency_gain(&spec, &base),
        });
    }
    points
}

/// The year after which the physical roadmap is flat (the final node's
/// introduction): 2021 under the IRDS projection the paper used.
pub fn scaling_end_year() -> u32 {
    TechNode::all()
        .iter()
        .map(|n| n.intro_year())
        .max()
        // lint:allow(no-panic-paths): TechNode::all() is a non-empty static table (asserted in cmos tests)
        .expect("node table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn template() -> ChipSpec {
        ChipSpec::new(TechNode::N45, 100.0, 1.0, 100.0)
    }

    #[test]
    fn roadmap_climbs_then_flatlines() {
        let model = PotentialModel::paper();
        let points = physical_roadmap(&model, &template(), 2000, 2030);
        assert!(!points.is_empty());
        // Monotone non-decreasing throughput.
        assert!(points
            .windows(2)
            .all(|w| w[0].throughput_gain <= w[1].throughput_gain + 1e-9));
        // Flat after scaling ends.
        let end = scaling_end_year();
        let wall_value = points
            .iter()
            .find(|p| p.year == end)
            .expect("range covers the end")
            .throughput_gain;
        for p in points.iter().filter(|p| p.year > end) {
            assert_eq!(p.throughput_gain, wall_value, "year {}", p.year);
        }
        // And it genuinely climbed before that.
        assert!(wall_value > 10.0, "total climb {wall_value}");
    }

    #[test]
    fn pre_silicon_years_are_skipped() {
        let model = PotentialModel::paper();
        let points = physical_roadmap(&model, &template(), 1990, 2002);
        assert!(points.iter().all(|p| p.year >= 1999));
    }

    #[test]
    fn scaling_ends_in_2021() {
        assert_eq!(scaling_end_year(), 2021);
    }

    #[test]
    fn decade_over_decade_slowdown() {
        // The 2010s deliver a smaller physical multiple than the 2000s —
        // the slowdown that motivates the whole paper.
        let model = PotentialModel::paper();
        let points = physical_roadmap(&model, &template(), 2000, 2020);
        let at = |y: u32| {
            points
                .iter()
                .find(|p| p.year == y)
                .expect("year in range")
                .throughput_gain
        };
        let first_decade = at(2010) / at(2000);
        let second_decade = at(2020) / at(2010);
        assert!(
            second_decade < first_decade,
            "2000s {first_decade:.1}x vs 2010s {second_decade:.1}x"
        );
    }

    #[test]
    fn efficiency_roadmap_also_climbs() {
        let model = PotentialModel::paper();
        let points = physical_roadmap(&model, &template(), 2000, 2025);
        let last = points.last().expect("non-empty");
        assert!(last.efficiency_gain > 5.0);
    }
}
