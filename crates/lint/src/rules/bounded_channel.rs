//! `bounded-channel` — serving paths apply backpressure.
//!
//! An unbounded `mpsc::channel()` between a producer that accepts
//! external work and a consumer that drains it turns overload into
//! unbounded memory growth: the queue absorbs everything until the
//! allocator gives out, long after latency targets are blown. On the
//! serving crates every channel must be an `mpsc::sync_channel(bound)`
//! with an explicit capacity so overload surfaces as send backpressure
//! (or a `try_send` error the admission layer can shed). Deliberate
//! unbounded channels — e.g. a bounded-by-construction handoff — take
//! a justified `// lint:allow(bounded-channel): <why>`.

use crate::parser::calls_in;
use crate::symbols::use_map;
use crate::workspace::Workspace;
use crate::{Finding, Lint};

/// See the module docs.
pub struct BoundedChannel;

/// Serving-path scopes: crates on the request path plus the CLI's
/// server plumbing. Offline analysis crates may queue freely.
const SCOPES: [&str; 5] = [
    "crates/server/",
    "crates/query/",
    "crates/core/",
    "crates/par/",
    "src/",
];

impl Lint for BoundedChannel {
    fn name(&self) -> &'static str {
        "bounded-channel"
    }

    fn description(&self) -> &'static str {
        "mpsc channels on serving paths are sync_channel with an explicit \
         bound so overload becomes backpressure, not memory growth"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ws.files {
            if file.test_file || !SCOPES.iter().any(|s| file.rel_path.starts_with(s)) {
                continue;
            }
            let imports = use_map(file);
            let code = file.code_tokens();
            for f in file.parsed.fns_with_bodies() {
                let (open, close) = f.body.unwrap_or((0, 0));
                for call in calls_in(&code, open, close) {
                    if call.is_method || file.is_test_line(call.span.line) {
                        continue;
                    }
                    let is_mpsc = match call.method.as_str() {
                        "channel" | "sync_channel" => {
                            call.chain.first().is_some_and(|c| c == "mpsc")
                                || (call.chain.is_empty()
                                    && imports
                                        .get(&call.method)
                                        .is_some_and(|p| p.contains("mpsc")))
                        }
                        _ => false,
                    };
                    if !is_mpsc {
                        continue;
                    }
                    if call.method == "channel" {
                        findings.push(Finding {
                            rule: "bounded-channel",
                            path: file.rel_path.clone(),
                            line: call.span.line,
                            col: call.span.col,
                            message: "unbounded `mpsc::channel()` on a serving path: \
                                use `mpsc::sync_channel(bound)` with an explicit \
                                capacity so overload becomes backpressure, or justify \
                                with `// lint:allow(bounded-channel): <why>`"
                                .to_string(),
                        });
                    } else if call.args.is_empty() {
                        findings.push(Finding {
                            rule: "bounded-channel",
                            path: file.rel_path.clone(),
                            line: call.span.line,
                            col: call.span.col,
                            message: "`mpsc::sync_channel()` without an explicit bound".to_string(),
                        });
                    }
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        BoundedChannel.check(&workspace(&[(path, src)]))
    }

    #[test]
    fn flags_unbounded_channel_via_chain() {
        let src = "use std::sync::mpsc;\n\
            pub fn wire() {\n\
                let (tx, rx) = mpsc::channel::<u64>();\n\
                let _ = (tx, rx);\n\
            }\n";
        let found = check_at("crates/server/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("sync_channel"));
    }

    #[test]
    fn flags_unbounded_channel_via_use_leaf() {
        let src = "use std::sync::mpsc::channel;\n\
            pub fn wire() {\n\
                let (tx, rx) = channel::<u64>();\n\
                let _ = (tx, rx);\n\
            }\n";
        assert_eq!(check_at("crates/query/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn sync_channel_with_bound_passes() {
        let src = "use std::sync::mpsc;\n\
            pub fn wire(depth: usize) {\n\
                let (tx, rx) = mpsc::sync_channel::<u64>(depth);\n\
                let _ = (tx, rx);\n\
            }\n";
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unrelated_channel_fns_pass() {
        // A local fn named `channel` that is not std mpsc.
        let src = "fn channel(width: u32) -> u32 { width }\n\
            pub fn f() -> u32 { channel(3) }\n";
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn offline_crates_are_out_of_scope() {
        let src = "use std::sync::mpsc;\n\
            pub fn wire() {\n\
                let (tx, rx) = mpsc::channel::<u64>();\n\
                let _ = (tx, rx);\n\
            }\n";
        assert!(check_at("crates/stats/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_scope_is_exempt() {
        let src = "use std::sync::mpsc;\n\
            #[cfg(test)]\n\
            mod tests {\n\
                #[test]\n\
                fn t() {\n\
                    let (tx, rx) = super::mpsc_pair();\n\
                    let _ = (tx, rx);\n\
                }\n\
            }\n\
            pub fn mpsc_pair() -> (mpsc::Sender<u8>, mpsc::Receiver<u8>) {\n\
                mpsc::channel()\n\
            }\n";
        // The shipping fn is still flagged; the test mod is not.
        assert_eq!(check_at("crates/server/src/lib.rs", src).len(), 1);
    }
}
