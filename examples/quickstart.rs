//! Quickstart: the three core moves of the Accelerator Wall methodology.
//!
//! 1. Build the CMOS potential model and ask what physics alone gives a
//!    chip (Section III).
//! 2. Separate a reported gain into specialization-driven and CMOS-driven
//!    parts with the CSR metric (Eqs. 1–2).
//! 3. Project a domain's accelerator wall at the end of CMOS scaling
//!    (Section VII).
//!
//! Run with: `cargo run --example quickstart`

use accelerator_wall::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The CMOS potential model ------------------------------------
    let model = PotentialModel::paper();
    let baseline = PotentialModel::reference_spec(); // 25 mm², 45 nm, 1 GHz

    // A hypothetical 7 nm accelerator: 100 mm² die, 1.2 GHz, 150 W.
    let chip = ChipSpec::new(TechNode::N7, 100.0, 1.2, 150.0);
    let physical_gain = model.throughput_gain(&chip, &baseline);
    println!("physical potential of a 100mm² 7nm chip: {physical_gain:.1}x the 45nm reference");
    println!(
        "  area-limited budget:  {:.2e} transistors",
        model.area_limited_transistors(&chip)
    );
    println!(
        "  power-limited budget: {:.2e} transistors",
        model.power_limited_transistors(&chip)
    );

    // --- 2. Chip Specialization Return ----------------------------------
    // Suppose the chip's vendor reports a 400x end-to-end speedup over the
    // reference on its target workload. How much of that is design skill?
    let reported = 400.0;
    let d = decompose(reported, physical_gain, 1.0)?;
    println!("\nreported gain {reported}x decomposes into:");
    println!("  CMOS-driven:           {:.1}x", d.cmos);
    println!(
        "  specialization-driven: {:.2}x  (the CSR ratio)",
        d.specialization
    );

    // --- 3. Where is the wall? ------------------------------------------
    println!("\naccelerator walls at the 5nm limit:");
    for &domain in Domain::all() {
        let wall = accelerator_wall(domain, TargetMetric::Performance)?;
        println!(
            "  {:<22} {:>5.1}x (log model) to {:>5.1}x (linear model) of headroom",
            domain.to_string(),
            wall.further_log,
            wall.further_linear
        );
    }
    Ok(())
}
