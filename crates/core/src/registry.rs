//! The experiment registry: the single roster of every paper target.
//!
//! The CLI's target list, its `--help`-style header, the unknown-target
//! error message, and the `all` run order are all derived from
//! [`Registry::paper`] — there is no hand-maintained list of target
//! names anywhere else, so the documentation cannot drift from the code.
//!
//! [`Registry::run_all`] executes experiments wave by wave: experiments
//! with no unfinished dependencies run concurrently under
//! [`std::thread::scope`], sharing one [`Ctx`] whose memoization makes
//! the shared inputs (corpus, potential model, per-workload sweeps)
//! compute exactly once per process no matter the interleaving.

use crate::cache::Ctx;
use crate::error::{Error, Result};
use crate::experiment::{Artifact, Experiment};
use crate::experiments;
use crate::json::Value;

/// An ordered collection of experiments, with dependency scheduling.
pub struct Registry {
    experiments: Vec<Box<dyn Experiment>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl Registry {
    /// Every regeneration target of the paper, in presentation order
    /// (figures, tables, then the synthesis analyses).
    pub fn paper() -> Registry {
        Registry {
            experiments: vec![
                Box::new(experiments::studies::Fig1),
                Box::new(experiments::csr::Fig2),
                Box::new(experiments::cmos::Fig3a),
                Box::new(experiments::chipdb::Fig3b),
                Box::new(experiments::chipdb::Fig3c),
                Box::new(experiments::potential::Fig3d),
                Box::new(experiments::studies::Fig4),
                Box::new(experiments::studies::Fig5),
                Box::new(experiments::csr::Fig6),
                Box::new(experiments::csr::Fig7),
                Box::new(experiments::studies::Fig8),
                Box::new(experiments::studies::Fig9),
                Box::new(experiments::dfg::Fig11),
                Box::new(experiments::dfg::Fig12),
                Box::new(experiments::accelsim::Fig13),
                Box::new(experiments::accelsim::Fig14),
                Box::new(experiments::projection::Fig15),
                Box::new(experiments::projection::Fig16),
                Box::new(experiments::dfg::Table1),
                Box::new(experiments::dfg::Table2),
                Box::new(experiments::accelsim::Table3),
                Box::new(experiments::workloads::Table4),
                Box::new(experiments::projection::Table5),
                Box::new(experiments::projection::Wall),
                Box::new(experiments::projection::Beyond),
                Box::new(experiments::studies::Insights),
                Box::new(experiments::potential::Dark),
                Box::new(experiments::projection::Sensitivity),
                Box::new(experiments::dfg::Dot),
                Box::new(experiments::potential::Roadmap),
                Box::new(experiments::report::Report),
            ],
        }
    }

    /// A registry over an arbitrary experiment set. Production code uses
    /// [`Registry::paper`]; this constructor exists so chaos tests can
    /// build registries of deliberately flaky, panicking, or hanging
    /// fakes and drive them through the exact production cache paths.
    pub fn from_experiments(experiments: Vec<Box<dyn Experiment>>) -> Registry {
        Registry { experiments }
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.experiments.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.experiments.is_empty()
    }

    /// Iterates the experiments in registry order.
    pub fn experiments(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.experiments.iter().map(Box::as_ref)
    }

    /// Every target id, in registry order.
    pub fn ids(&self) -> Vec<&'static str> {
        self.experiments.iter().map(|e| e.id()).collect()
    }

    /// The machine-readable roster: one `{id, description, deps}` object
    /// per target, in registry order.
    ///
    /// This single document backs both `accelwall list --json` and the
    /// server's `GET /experiments` route, so the two can never drift.
    pub fn roster_json(&self) -> Value {
        Value::array(self.experiments().map(|e| {
            Value::object([
                ("id", Value::from(e.id())),
                ("description", Value::from(e.description())),
                ("deps", e.deps().iter().copied().collect()),
            ])
        }))
    }

    /// Looks up one experiment by id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownExperiment`] carrying the full known-id
    /// list (the CLI prints it verbatim).
    pub fn get(&self, id: &str) -> Result<&dyn Experiment> {
        self.experiments
            .iter()
            .find(|e| e.id() == id)
            .map(Box::as_ref)
            .ok_or_else(|| Error::UnknownExperiment {
                id: id.to_string(),
                known: self.ids(),
            })
    }

    /// Runs one experiment by id against `ctx`.
    ///
    /// # Errors
    ///
    /// Unknown ids and any layer failure from the experiment itself.
    pub fn run(&self, id: &str, ctx: &Ctx) -> Result<Artifact> {
        self.get(id)?.run(ctx)
    }

    /// Groups experiment indices into waves: every experiment lands in
    /// the first wave after all of its `deps()` have completed.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownExperiment`] for a dep naming no registered id;
    /// [`Error::DependencyCycle`] when declarations deadlock.
    pub fn schedule(&self) -> Result<Vec<Vec<usize>>> {
        for e in &self.experiments {
            for dep in e.deps() {
                self.get(dep)?;
            }
        }
        let mut done = vec![false; self.experiments.len()];
        let mut waves = Vec::new();
        while done.iter().any(|d| !d) {
            let wave: Vec<usize> = (0..self.experiments.len())
                .filter(|&i| !done[i])
                .filter(|&i| {
                    self.experiments[i].deps().iter().all(|dep| {
                        self.experiments
                            .iter()
                            .zip(&done)
                            .any(|(e, &d)| d && e.id() == *dep)
                    })
                })
                .collect();
            if wave.is_empty() {
                return Err(Error::DependencyCycle {
                    ids: self
                        .experiments
                        .iter()
                        .zip(&done)
                        .filter(|(_, &d)| !d)
                        .map(|(e, _)| e.id())
                        .collect(),
                });
            }
            for &i in &wave {
                done[i] = true;
            }
            waves.push(wave);
        }
        Ok(waves)
    }

    /// Runs every experiment, waves in sequence and each wave's members
    /// concurrently, sharing `ctx`. Results come back in registry order;
    /// per-experiment failures are reported in place rather than
    /// aborting the sibling experiments.
    ///
    /// # Errors
    ///
    /// Only scheduling failures ([`Registry::schedule`]) fail the whole
    /// run.
    pub fn run_all(&self, ctx: &Ctx) -> Result<Vec<(&'static str, Result<Artifact>)>> {
        let waves = self.schedule()?;
        let mut results: Vec<Option<Result<Artifact>>> =
            self.experiments.iter().map(|_| None).collect();
        for wave in waves {
            let wave_results: Vec<(usize, Result<Artifact>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = wave
                    .iter()
                    .map(|&i| {
                        let exp = self.experiments[i].as_ref();
                        (i, scope.spawn(move || exp.run(ctx)))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|(i, handle)| {
                        let result = handle.join().unwrap_or_else(|_| {
                            Err(Error::ExperimentPanicked {
                                id: self.experiments[i].id().to_string(),
                            })
                        });
                        (i, result)
                    })
                    .collect()
            });
            for (i, result) in wave_results {
                results[i] = Some(result);
            }
        }
        Ok(self
            .experiments
            .iter()
            .zip(results)
            .map(|(e, r)| {
                let r = r.unwrap_or_else(|| {
                    Err(Error::ExperimentPanicked {
                        id: e.id().to_string(),
                    })
                });
                (e.id(), r)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_unique_and_nonempty() {
        let registry = Registry::paper();
        let ids = registry.ids();
        assert!(!ids.is_empty());
        let unique: HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len(), "duplicate experiment ids");
        for e in registry.experiments() {
            assert!(
                !e.description().is_empty(),
                "{} lacks a description",
                e.id()
            );
        }
    }

    #[test]
    fn unknown_id_error_carries_the_registry_roster() {
        let registry = Registry::paper();
        match registry.get("fig99") {
            Err(Error::UnknownExperiment { id, known }) => {
                assert_eq!(id, "fig99");
                assert_eq!(known, registry.ids());
            }
            Err(other) => panic!("expected UnknownExperiment, got {other:?}"),
            Ok(e) => panic!("expected UnknownExperiment, got experiment {}", e.id()),
        }
    }

    #[test]
    fn schedule_covers_everything_and_respects_deps() {
        let registry = Registry::paper();
        let waves = registry.schedule().unwrap();
        let mut seen = HashSet::new();
        let ids = registry.ids();
        for wave in &waves {
            for &i in wave {
                // Every dep completed in a strictly earlier wave.
                for dep in registry.experiments[i].deps() {
                    assert!(seen.contains(dep), "{} ran before its dep {dep}", ids[i]);
                }
            }
            for &i in wave {
                seen.insert(ids[i]);
            }
        }
        assert_eq!(seen.len(), registry.len());
    }

    #[test]
    fn roster_json_mirrors_the_registry() {
        let registry = Registry::paper();
        let roster = registry.roster_json();
        let rows = roster.as_array().unwrap();
        assert_eq!(rows.len(), registry.len());
        for (row, e) in rows.iter().zip(registry.experiments()) {
            assert_eq!(row.get("id").and_then(Value::as_str), Some(e.id()));
            assert_eq!(
                row.get("description").and_then(Value::as_str),
                Some(e.description())
            );
            let deps: Vec<&str> = row
                .get("deps")
                .and_then(Value::as_array)
                .unwrap()
                .iter()
                .filter_map(Value::as_str)
                .collect();
            assert_eq!(deps, e.deps());
        }
    }

    #[test]
    fn declared_deps_order_the_summary_targets() {
        let registry = Registry::paper();
        let wall = registry.get("wall").unwrap();
        assert!(wall.deps().contains(&"fig15"));
        let fig14 = registry.get("fig14").unwrap();
        assert!(fig14.deps().contains(&"fig13"));
    }
}
