//! Microbenchmarks of the analysis kernels in isolation: the numbers a
//! downstream user of the library cares about when embedding it.

use accelerator_wall::prelude::*;
use accelerator_wall::stats::{pareto_frontier, Polynomial, PowerLaw};
use accelwall_bench::harness::{BenchmarkId, Criterion};
use accelwall_bench::{criterion_group, criterion_main};
use std::hint::black_box;

fn stats_kernels(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=4096).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.8) + x.sin()).collect();
    c.bench_function("stats/powerlaw_fit_4096", |b| {
        b.iter(|| black_box(PowerLaw::fit(&xs, &ys).unwrap().exponent));
    });
    c.bench_function("stats/quadratic_fit_4096", |b| {
        b.iter(|| black_box(Polynomial::fit(&xs, &ys, 2).unwrap().r_squared));
    });
    c.bench_function("stats/pareto_frontier_4096", |b| {
        b.iter(|| black_box(pareto_frontier(&xs, &ys).unwrap().len()));
    });
}

fn corpus_generation(c: &mut Criterion) {
    c.bench_function("chipdb/generate_paper_corpus", |b| {
        b.iter(|| black_box(CorpusSpec::paper_scale().generate().len()));
    });
}

fn potential_queries(c: &mut Criterion) {
    let model = PotentialModel::paper();
    let baseline = PotentialModel::reference_spec();
    c.bench_function("potential/throughput_gain", |b| {
        b.iter(|| {
            let spec = ChipSpec::new(TechNode::N7, 350.0, 1.4, 280.0);
            black_box(model.throughput_gain(&spec, &baseline))
        });
    });
}

fn workload_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/build");
    for &w in Workload::all() {
        group.bench_with_input(BenchmarkId::from_parameter(w.abbrev()), &w, |b, &w| {
            b.iter(|| black_box(w.default_instance().stats().vertices));
        });
    }
    group.finish();
}

fn simulator_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelsim/simulate");
    for &w in &[Workload::Trd, Workload::Fft, Workload::Aes, Workload::Mdy] {
        let dfg = w.default_instance();
        let config = DesignConfig::new(TechNode::N7, 256, 5, true);
        group.bench_with_input(BenchmarkId::from_parameter(w.abbrev()), &dfg, |b, dfg| {
            b.iter(|| black_box(simulate(dfg, &config).unwrap().cycles));
        });
    }
    group.finish();
}

fn instance_scaling(c: &mut Criterion) {
    // How simulation cost scales with problem size — the practical limit
    // on how large a DFG the sweep can afford.
    let mut group = c.benchmark_group("accelsim/scaling");
    let config = DesignConfig::new(TechNode::N7, 64, 5, true);
    for size in InstanceSize::all() {
        let dfg = Workload::Gmm.instance(*size);
        let vertices = dfg.stats().vertices;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gmm_{size:?}_{vertices}v")),
            &dfg,
            |b, dfg| b.iter(|| black_box(simulate(dfg, &config).unwrap().cycles)),
        );
    }
    group.finish();
}

fn relation_matrix(c: &mut Criterion) {
    c.bench_function("csr/gpu_relation_matrix", |b| {
        b.iter(|| {
            black_box(
                accelerator_wall::studies::gpu::arch_relation_matrix(false)
                    .unwrap()
                    .architectures()
                    .len(),
            )
        });
    });
}

fn wall_projection(c: &mut Criterion) {
    c.bench_function("projection/all_walls", |b| {
        b.iter(|| black_box(accelwall_bench::all_walls()));
    });
}

/// Shared fast-bench configuration: the regeneration paths are
/// deterministic analytics, so a handful of samples with short warmup
/// measures them faithfully while keeping `cargo bench` CI-friendly.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}

criterion_group! {
    name = components;
    config = fast();
    targets = stats_kernels,
    corpus_generation,
    potential_queries,
    workload_builds,
    simulator_runs,
    instance_scaling,
    relation_matrix,
    wall_projection
}
criterion_main!(components);
