//! Chip datasheet corpus and the paper's transistor-budget regressions.
//!
//! Section III of the paper builds its application-independent *CMOS
//! potential model* from the datasheets of 1612 CPUs and 1001 GPUs (CPU DB,
//! TechPowerUp). The corpus is consumed through exactly two regressions:
//!
//! * **Fig. 3b** — transistor count as a function of the density factor
//!   `D = area / node²`, fitted as the power law `TC(D) = 4.99e9 · D^0.877`
//!   ("logarithmic regression with least mean square errors" — OLS in
//!   log-log space). The sub-linear exponent captures design-complexity
//!   underutilization of very large dies.
//! * **Fig. 3c** — the power-limited budget: `transistors[G] × f[GHz] =
//!   c · TDP^e` per node group, with newer groups enjoying larger `c` and
//!   smaller `e` (power increasingly caps how much silicon can switch).
//!
//! The original corpora are proprietary scrapes, so this crate substitutes a
//! **synthetic datasheet corpus** ([`corpus`]) whose generating process is
//! the published law plus log-normal noise: fitting our corpus with the same
//! estimator recovers the published coefficients, which is all the paper
//! ever uses the data for. A small [`curated`] table of well-known real
//! chips provides independent spot checks.
//!
//! # Example
//!
//! ```
//! use accelwall_chipdb::{corpus::CorpusSpec, fit};
//!
//! let corpus = CorpusSpec::paper_scale().generate();
//! assert_eq!(corpus.len(), 1612 + 1001);
//! let law = fit::transistor_density_fit(&corpus).unwrap();
//! // The fit recovers the paper's published exponent of 0.877.
//! assert!((law.exponent - 0.877).abs() < 0.03);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod curated;
pub mod fit;
pub mod trends;

pub use corpus::CorpusSpec;
pub use fit::{NodeGroup, PAPER_TC_LAW};

use accelwall_cmos::TechNode;
use std::fmt;

/// Broad class of a chip, as the case studies distinguish platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipKind {
    /// General-purpose processor.
    Cpu,
    /// Graphics processor.
    Gpu,
    /// Field-programmable gate array.
    Fpga,
    /// Application-specific integrated circuit.
    Asic,
}

impl fmt::Display for ChipKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ChipKind::Cpu => "CPU",
            ChipKind::Gpu => "GPU",
            ChipKind::Fpga => "FPGA",
            ChipKind::Asic => "ASIC",
        };
        f.write_str(s)
    }
}

/// One datasheet row: the physical facts the potential model consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipRecord {
    /// Marketing or die name.
    pub name: String,
    /// Chip class.
    pub kind: ChipKind,
    /// Fabrication node.
    pub node: TechNode,
    /// Die area in mm².
    pub die_area_mm2: f64,
    /// Transistor count (absolute).
    pub transistors: f64,
    /// Thermal design power in watts.
    pub tdp_w: f64,
    /// Operating frequency in MHz.
    pub freq_mhz: f64,
    /// Introduction year.
    pub year: u32,
}

impl ChipRecord {
    /// The paper's density factor `D = area / node²` in mm²/nm².
    pub fn density_factor(&self) -> f64 {
        self.node.density_factor(self.die_area_mm2)
    }

    /// The Fig. 3c response variable: transistors (billions) × freq (GHz).
    pub fn switching_capacity(&self) -> f64 {
        (self.transistors / 1e9) * (self.freq_mhz / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChipRecord {
        ChipRecord {
            name: "test".into(),
            kind: ChipKind::Gpu,
            node: TechNode::N16,
            die_area_mm2: 314.0,
            transistors: 7.2e9,
            tdp_w: 180.0,
            freq_mhz: 1607.0,
            year: 2016,
        }
    }

    #[test]
    fn density_factor_units() {
        // 314 mm2 at 16 nm: D = 314 / 256 ≈ 1.227 mm²/nm².
        let r = sample();
        assert!((r.density_factor() - 314.0 / 256.0).abs() < 1e-12);
    }

    #[test]
    fn switching_capacity_units() {
        // 7.2e9 transistors at 1.607 GHz: 7.2 * 1.607 ≈ 11.57 G·GHz.
        let r = sample();
        assert!((r.switching_capacity() - 7.2 * 1.607).abs() < 1e-9);
    }

    #[test]
    fn kind_display() {
        assert_eq!(ChipKind::Asic.to_string(), "ASIC");
        assert_eq!(ChipKind::Cpu.to_string(), "CPU");
    }
}
