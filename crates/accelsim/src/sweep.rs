//! The Table III design-space sweep (Fig. 13).

use crate::sim::{
    assemble_report, graph_costs, point_kernel, DesignConfig, SimReport, MAX_PARTITION,
    MAX_SIMPLIFICATION,
};
use crate::{Result, SimError};
use accelwall_cmos::TechNode;
use accelwall_dfg::{Dfg, Program};
use std::sync::Arc;

/// The swept parameter grid of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpace {
    /// Partitioning factors (powers of two).
    pub partition_factors: Vec<u64>,
    /// Simplification degrees.
    pub simplification_degrees: Vec<u32>,
    /// CMOS nodes.
    pub nodes: Vec<TechNode>,
    /// Whether heterogeneous fusion is enabled for every point.
    pub heterogeneity: bool,
}

impl SweepSpace {
    /// The full Table III grid: partitioning 1…2¹⁹, simplification 1…13,
    /// nodes {45, 32, 22, 14, 10, 7, 5} nm — 20 × 13 × 7 = 1820 points.
    pub fn table3() -> Self {
        SweepSpace {
            partition_factors: (0..=MAX_PARTITION.trailing_zeros() as u64)
                .map(|k| 1u64 << k)
                .collect(),
            simplification_degrees: (1..=MAX_SIMPLIFICATION).collect(),
            nodes: TechNode::sweep_nodes().to_vec(),
            heterogeneity: true,
        }
    }

    /// A decimated grid for fast tests and doc examples (5 × 4 × 3).
    pub fn coarse() -> Self {
        SweepSpace {
            partition_factors: vec![1, 16, 256, 4096, 65536],
            simplification_degrees: vec![1, 5, 9, 13],
            nodes: vec![TechNode::N45, TechNode::N14, TechNode::N5],
            heterogeneity: true,
        }
    }

    /// Number of design points the space enumerates.
    pub fn len(&self) -> usize {
        self.partition_factors.len() * self.simplification_degrees.len() * self.nodes.len()
    }

    /// Whether the space is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates every configuration in the space.
    pub fn configs(&self) -> impl Iterator<Item = DesignConfig> + '_ {
        self.nodes.iter().flat_map(move |&node| {
            self.simplification_degrees.iter().flat_map(move |&s| {
                self.partition_factors
                    .iter()
                    .map(move |&p| DesignConfig::new(node, p, s, self.heterogeneity))
            })
        })
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The configuration simulated.
    pub config: DesignConfig,
    /// Its simulation outcome.
    pub report: SimReport,
}

/// Runs the sweep over one lowered `program`, one [`SweepPoint`] per
/// configuration, sharing the program across every grid point.
///
/// The per-node cost walk ([`point_kernel`]) does not depend on the
/// partitioning factor, so the sweep hoists it out of the partitioning
/// axis: one kernel evaluation per `(node, simplification)` combination —
/// 91 walks instead of 1820 for the Table III grid — fanned across the
/// `accelwall-par` pool, then an O(1) [`assemble_report`] per point. The
/// assembly uses the exact expressions of the monolithic walk, so every
/// report is bit-identical to simulating each point from scratch.
///
/// # Errors
///
/// Surfaces the same error the per-point loop would: the first
/// [`SimError::InvalidConfig`] in configuration order, or
/// [`SimError::EmptyGraph`] for graphs without compute vertices.
pub fn run_sweep_lowered(program: &Arc<Program>, space: &SweepSpace) -> Result<Vec<SweepPoint>> {
    // Validate up front in configuration order so the surfaced error is
    // the one the point-at-a-time loop would have hit first.
    for config in space.configs() {
        config.validate()?;
        if program.stats().computes == 0 {
            return Err(SimError::EmptyGraph);
        }
    }

    // One kernel walk per (node, simplification) combination, in parallel.
    let combos: Vec<DesignConfig> = space
        .nodes
        .iter()
        .flat_map(|&node| {
            space
                .simplification_degrees
                .iter()
                .map(move |&s| DesignConfig::new(node, 1, s, space.heterogeneity))
        })
        .collect();
    let shared = Arc::clone(program);
    let jobs = combos.clone();
    let kernels = accelwall_par::par_map(combos.len(), move |i| point_kernel(&shared, &jobs[i]));
    let costs = graph_costs(program);

    // O(1) assembly per grid point, in configuration order.
    let mut points = Vec::with_capacity(space.len());
    for (combo, kernel) in combos.iter().zip(&kernels) {
        for &p in &space.partition_factors {
            let config = DesignConfig::new(
                combo.node,
                p,
                combo.simplification_degree,
                space.heterogeneity,
            );
            let report = assemble_report(kernel, &costs, &config);
            points.push(SweepPoint { config, report });
        }
    }
    Ok(points)
}

/// Runs the sweep over `dfg` — the front-end convenience over
/// [`run_sweep_lowered`] that lowers per call. Hot paths lower once with
/// [`Dfg::lower`] and share the `Arc<Program>`.
///
/// # Errors
///
/// Same as [`run_sweep_lowered`].
pub fn run_sweep(dfg: &Dfg, space: &SweepSpace) -> Result<Vec<SweepPoint>> {
    run_sweep_lowered(&Arc::new(dfg.lower()), space)
}

/// The sweep point with the best energy efficiency (the Fig. 13 annotated
/// optimum).
pub fn best_efficiency(points: &[SweepPoint]) -> Option<&SweepPoint> {
    // NaN policy: a poisoned point can never be the optimum (and, under
    // `total_cmp` alone, a positive NaN would outrank every real value).
    points
        .iter()
        .filter(|p| p.report.energy_efficiency().is_finite())
        .max_by(|a, b| {
            a.report
                .energy_efficiency()
                .total_cmp(&b.report.energy_efficiency())
        })
}

/// The runtime–power Pareto frontier of a sweep: the design points no
/// other point beats on *both* runtime and power — the visible lower-left
/// envelope of the Fig. 13 cloud. Sorted by ascending runtime (and thus
/// descending power).
pub fn pareto_runtime_power(points: &[SweepPoint]) -> Vec<&SweepPoint> {
    let mut sorted: Vec<&SweepPoint> = points.iter().collect();
    // `total_cmp` keeps the sort total on NaN; a NaN runtime sorts last
    // and a NaN power never lowers the running minimum, so poisoned
    // points cannot enter the frontier.
    sorted.sort_by(|a, b| {
        a.report
            .runtime_s
            .total_cmp(&b.report.runtime_s)
            .then(a.report.power_w().total_cmp(&b.report.power_w()))
    });
    let mut frontier: Vec<&SweepPoint> = Vec::new();
    let mut best_power = f64::INFINITY;
    for p in sorted {
        if p.report.power_w() < best_power {
            best_power = p.report.power_w();
            frontier.push(p);
        }
    }
    frontier
}

/// The sweep point with the best throughput.
pub fn best_performance(points: &[SweepPoint]) -> Option<&SweepPoint> {
    // Same NaN policy as [`best_efficiency`]: poisoned points never win.
    points
        .iter()
        .filter(|p| p.report.throughput().is_finite())
        .max_by(|a, b| a.report.throughput().total_cmp(&b.report.throughput()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use accelwall_workloads::Workload;

    #[test]
    fn table3_dimensions() {
        let s = SweepSpace::table3();
        assert_eq!(s.partition_factors.len(), 20);
        assert_eq!(s.partition_factors[0], 1);
        assert_eq!(*s.partition_factors.last().unwrap(), 524_288);
        assert_eq!(s.simplification_degrees.len(), 13);
        assert_eq!(s.nodes.len(), 7);
        assert_eq!(s.len(), 1820);
        assert!(!s.is_empty());
    }

    #[test]
    fn sweep_covers_every_config() {
        let g = Workload::Trd.default_instance();
        let space = SweepSpace::coarse();
        let points = run_sweep(&g, &space).unwrap();
        assert_eq!(points.len(), space.len());
    }

    #[test]
    fn stencil_optimum_is_newest_node() {
        // Paper: "the optimal points for energy efficiency are received
        // for 5nm CMOS" at high-but-not-tapering partitioning and the
        // highest non-serializing simplification.
        let g = Workload::S3d.default_instance();
        let points = run_sweep(&g, &SweepSpace::table3()).unwrap();
        let best = best_efficiency(&points).unwrap();
        assert_eq!(best.config.node, TechNode::N5, "{:?}", best.config);
        assert!(best.config.simplification_degree >= 4);
        assert!(best.config.partition_factor > 1);
        assert!(
            best.config.partition_factor < 524_288,
            "over-partitioning must not be optimal"
        );
    }

    #[test]
    fn best_performance_uses_aggressive_partitioning() {
        let g = Workload::S3d.default_instance();
        let points = run_sweep(&g, &SweepSpace::table3()).unwrap();
        let best = best_performance(&points).unwrap();
        assert!(best.config.partition_factor >= 256);
        assert_eq!(best.config.node, TechNode::N5);
    }

    #[test]
    fn empty_points_have_no_best() {
        assert!(best_efficiency(&[]).is_none());
        assert!(best_performance(&[]).is_none());
    }

    #[test]
    fn nan_poisoned_points_never_win_or_enter_the_frontier() {
        // Regression: the selectors used `partial_cmp(..).expect(..)`,
        // so one NaN report panicked the whole sweep analysis; with the
        // explicit NaN policy a poisoned point is simply never chosen.
        let g = Workload::Trd.default_instance();
        let mut points = run_sweep(&g, &SweepSpace::coarse()).unwrap();
        let clean_best_eff = best_efficiency(&points).unwrap().config;
        let clean_best_perf = best_performance(&points).unwrap().config;
        let poisoned = SweepPoint {
            config: points[0].config,
            report: SimReport {
                runtime_s: f64::NAN,
                ..points[0].report
            },
        };
        points.insert(0, poisoned);
        // NaN runtime makes throughput, power, and efficiency NaN too.
        assert!(points[0].report.energy_efficiency().is_nan());
        let best = best_efficiency(&points).unwrap();
        assert!(best.report.energy_efficiency().is_finite());
        assert_eq!(best.config, clean_best_eff);
        let best = best_performance(&points).unwrap();
        assert_eq!(best.config, clean_best_perf);
        let frontier = pareto_runtime_power(&points);
        assert!(!frontier.is_empty());
        assert!(frontier.iter().all(|p| p.report.runtime_s.is_finite()));
        // All-NaN input: no winner rather than an arbitrary one.
        let all_poisoned: Vec<SweepPoint> = points[..1].to_vec();
        assert!(best_efficiency(&all_poisoned).is_none());
        assert!(best_performance(&all_poisoned).is_none());
    }

    #[test]
    fn runtime_power_frontier_is_dominance_free() {
        let g = Workload::S3d.default_instance();
        let points = run_sweep(&g, &SweepSpace::coarse()).unwrap();
        let frontier = pareto_runtime_power(&points);
        assert!(!frontier.is_empty() && frontier.len() < points.len());
        // Staircase: runtime ascends, power strictly descends.
        for w in frontier.windows(2) {
            assert!(w[0].report.runtime_s <= w[1].report.runtime_s);
            assert!(w[0].report.power_w() > w[1].report.power_w());
        }
        // No point dominates a frontier member on both axes.
        for f in &frontier {
            for p in &points {
                let dominates = p.report.runtime_s < f.report.runtime_s
                    && p.report.power_w() < f.report.power_w();
                assert!(!dominates, "{:?} dominates {:?}", p.config, f.config);
            }
        }
    }

    #[test]
    fn newest_node_traces_the_frontier() {
        // Fig. 13's per-node clouds nest: the 5 nm cloud sits down-left of
        // every older node's, so the runtime-power envelope is traced
        // entirely by the final node — "the optimal points are received
        // for 5nm CMOS".
        let g = Workload::S3d.default_instance();
        let points = run_sweep(&g, &SweepSpace::table3()).unwrap();
        let frontier = pareto_runtime_power(&points);
        assert!(frontier.len() >= 5);
        assert!(
            frontier.iter().all(|p| p.config.node == TechNode::N5),
            "an older node broke onto the envelope"
        );
    }

    #[test]
    fn cmos_advancement_reduces_power_across_the_space() {
        // Fig. 13: the point clouds shift down (less power) as nodes
        // advance, at matched knob settings.
        let g = Workload::S3d.default_instance();
        for &(p, s) in &[(16u64, 1u32), (256, 5), (4096, 9)] {
            let old = simulate(&g, &DesignConfig::new(TechNode::N45, p, s, true)).unwrap();
            let new = simulate(&g, &DesignConfig::new(TechNode::N5, p, s, true)).unwrap();
            assert!(
                new.power_w() < old.power_w(),
                "p={p} s={s}: {} !< {}",
                new.power_w(),
                old.power_w()
            );
        }
    }
}
