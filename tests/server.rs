//! End-to-end tests of `accelwall serve`: spawn the real binary, speak
//! HTTP/1.1 over [`TcpStream`], and assert the service contract —
//! responses byte-identical to the one-shot CLI, shared inputs computed
//! at most once per server lifetime (observed through `/metrics`), and
//! a graceful drain that finishes in-flight requests before the process
//! exits.

use accelerator_wall::json::Value;
use accelerator_wall::prelude::Registry;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A running `accelwall serve` child plus the address it bound.
struct ServeProcess {
    child: Child,
    addr: String,
    // Keeps the child's stdout pipe open for its lifetime (dropping the
    // read end would turn the final drain announcement into EPIPE).
    stdout: BufReader<std::process::ChildStdout>,
}

impl ServeProcess {
    /// Spawns `accelwall serve` on a kernel-assigned port and reads the
    /// resolved address off the announcement line.
    fn spawn() -> ServeProcess {
        let mut child = Command::new(env!("CARGO_BIN_EXE_accelwall"))
            .args(["serve", "--addr", "127.0.0.1:0", "--workers", "4"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut stdout = BufReader::new(stdout);
        let mut banner = String::new();
        stdout.read_line(&mut banner).expect("an announcement line");
        let addr = banner
            .split("http://")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
            .to_string();
        ServeProcess {
            child,
            addr,
            stdout,
        }
    }

    /// Issues `POST /shutdown` (the drain begins; queued work finishes).
    fn shutdown(&self) {
        let (status, body) = request(&self.addr, "POST", "/shutdown", None);
        assert_eq!((status, body.as_str()), (200, "draining\n"));
    }

    /// Blocks until the process exits and asserts it drained cleanly.
    fn wait(mut self) {
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "serve exited {status:?}");
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("stdout drains");
        assert!(
            rest.contains("drained cleanly"),
            "missing drain announcement in {rest:?}"
        );
    }

    /// Issues `POST /shutdown` and asserts the process drains cleanly.
    fn shutdown_and_wait(self) {
        self.shutdown();
        self.wait();
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        // Only reached when an assertion failed mid-test.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One request/response exchange; returns (status, body).
fn request(addr: &str, method: &str, path: &str, accept: Option<&str>) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_mins(2)))
        .unwrap();
    let accept = accept.map_or(String::new(), |a| format!("Accept: {a}\r\n"));
    stream
        .write_all(
            format!("{method} {path} HTTP/1.1\r\nHost: t\r\n{accept}Connection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("send");
    read_response(&mut stream)
}

fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    request(addr, "GET", path, None)
}

/// Pulls one `accelwall_*` metric value out of a `/metrics` body.
fn metric(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

fn cli_stdout(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_accelwall"))
        .args(args)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{args:?} failed");
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

/// The acceptance test: concurrent requests for every registry target
/// return byte-identical JSON to `accelwall all --json`, the shared
/// inputs compute at most once across the whole server lifetime, and
/// the server drains gracefully with an in-flight request completing.
#[test]
fn serves_every_target_byte_identical_to_the_cli_then_drains() {
    let all = cli_stdout(&["all", "--json"]);
    let all_doc = Value::parse(&all).expect("all --json parses");

    let serve = ServeProcess::spawn();
    let addr = serve.addr.clone();

    // The roster route is byte-identical to `accelwall list --json`.
    let (status, roster) = get(&addr, "/experiments");
    assert_eq!(status, 200);
    assert_eq!(roster, cli_stdout(&["list", "--json"]));

    // Every target, requested concurrently from 8 client threads.
    let ids = Registry::paper().ids();
    std::thread::scope(|scope| {
        for chunk in ids.chunks(ids.len().div_ceil(8)) {
            let addr = &addr;
            let all_doc = &all_doc;
            scope.spawn(move || {
                for id in chunk {
                    let (status, body) = get(addr, &format!("/experiments/{id}"));
                    assert_eq!(status, 200, "{id} failed:\n{body}");
                    let mut expected = all_doc
                        .get(id)
                        .unwrap_or_else(|| panic!("{id} missing from all --json"))
                        .pretty();
                    expected.push('\n');
                    assert_eq!(body, expected, "{id}: server body != all --json");
                }
            });
        }
    });

    // The compute-once invariant held across the whole lifetime.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metric(&metrics, "accelwall_ctx_corpus_computes") <= 1.0);
    assert!(metric(&metrics, "accelwall_ctx_model_computes") <= 1.0);
    assert!(metric(&metrics, "accelwall_ctx_fit_computes") <= 1.0);
    let computes = metric(&metrics, "accelwall_artifact_cache_computes_total");
    assert!(
        computes <= ids.len() as f64,
        "artifacts recomputed: {computes} > {}",
        ids.len()
    );
    // Demand exceeded computation: dependencies resolved through the
    // cache mean strictly fewer computes than requests would imply.
    assert!(metric(&metrics, "accelwall_artifact_cache_requests_total") >= ids.len() as f64);

    // Graceful drain with a request in flight: accept a connection,
    // leave its head unfinished, trigger shutdown, then finish the head
    // — the worker must still answer before the process exits.
    let mut slow = TcpStream::connect(&addr).expect("connect");
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    slow.write_all(b"GET /experiments/wall HT")
        .expect("half a head");
    std::thread::sleep(Duration::from_millis(100));
    serve.shutdown();
    slow.write_all(b"TP/1.1\r\nHost: t\r\n\r\n")
        .expect("rest of the head");
    let (status, body) = read_response(&mut slow);
    assert_eq!(status, 200, "in-flight request dropped during drain");
    assert!(Value::parse(&body).is_ok());
    serve.wait();
}

/// A dependent target requested first over HTTP computes its
/// prerequisites exactly once — the `CtxCounters` golden test extended
/// to the server path, observed through `/metrics`.
#[test]
fn dependent_target_over_http_computes_prerequisites_once() {
    let serve = ServeProcess::spawn();
    let addr = serve.addr.clone();

    // fig14 declares fig13 as a dependency; request the dependent first.
    let (status, _) = get(&addr, "/experiments/fig14");
    assert_eq!(status, 200);
    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_computes_total"),
        2.0,
        "fig14 + its dep fig13"
    );

    // The prerequisite is already warm: a hit, no new compute.
    let (status, _) = get(&addr, "/experiments/fig13");
    assert_eq!(status, 200);
    let (_, metrics) = get(&addr, "/metrics");
    assert_eq!(
        metric(&metrics, "accelwall_artifact_cache_computes_total"),
        2.0
    );
    assert_eq!(metric(&metrics, "accelwall_artifact_cache_hits_total"), 1.0);
    // Both experiments drew their sweeps through one shared Ctx.
    assert!(metric(&metrics, "accelwall_ctx_sweep_computes") <= 16.0);
    assert!(
        metric(&metrics, "accelwall_ctx_sweep_requests")
            > metric(&metrics, "accelwall_ctx_sweep_computes")
    );

    serve.shutdown_and_wait();
}

/// Wire-level error handling: 404s carry the registry roster, wrong
/// methods get 405 + Allow, and garbage gets 400 — all without taking
/// the server down.
#[test]
fn error_responses_derive_from_the_registry() {
    let serve = ServeProcess::spawn();
    let addr = serve.addr.clone();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200);
    let health = Value::parse(&body).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ready"));
    assert!(health
        .get("failed")
        .and_then(Value::as_array)
        .expect("failed array")
        .is_empty());

    // Unknown id: the 404 body is the CLI's roster-carrying error.
    let (status, body) = get(&addr, "/experiments/fig99");
    assert_eq!(status, 404);
    assert!(body.contains("unknown target \"fig99\""));
    for id in Registry::paper().ids() {
        assert!(body.contains(id), "404 roster missing {id}");
    }

    // Unknown path: 404 naming the route table.
    let (status, body) = get(&addr, "/fig3b");
    assert_eq!(status, 404);
    assert!(body.contains("/experiments/{id}"));

    // Wrong methods: 405 with Allow.
    for (method, path) in [
        ("POST", "/experiments"),
        ("DELETE", "/experiments/fig3b"),
        ("GET", "/shutdown"),
        ("PUT", "/healthz"),
    ] {
        let (status, _) = request(&addr, method, path, None);
        assert_eq!(status, 405, "{method} {path}");
    }

    // Malformed request line: 400.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.write_all(b"not http at all\r\n\r\n").expect("send");
    let (status, _) = read_response(&mut stream);
    assert_eq!(status, 400);

    // Accept: text/plain returns the human rendering, same bytes as the
    // one-shot CLI's default output.
    let (status, text) = request(&addr, "GET", "/experiments/fig3a", Some("text/plain"));
    assert_eq!(status, 200);
    assert_eq!(text, cli_stdout(&["fig3a"]));

    serve.shutdown_and_wait();
}
