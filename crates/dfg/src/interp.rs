//! Interpretation of DFGs: the bytecode VM and its legacy oracle.
//!
//! Executes a graph on `f64` values so workload generators can be validated
//! functionally against plain-software implementations of the same kernels.
//! Bitwise operations interpret their operands as unsigned 64-bit integers
//! (every integer the workloads use is exactly representable in an `f64`).
//!
//! Since the bytecode refactor the shipping interpreter is the register
//! machine in [`Program::evaluate`](crate::Program::evaluate) /
//! [`Program::run`](crate::Program::run): a single forward loop over the
//! lowered SoA arrays, operands fetched through CSR slices, no per-node
//! `Vec` allocation and no string hashing on the positional path.
//! [`Dfg::evaluate`] lowers and delegates, so front-end callers keep the
//! old API; callers in loops should lower once. The original tree-walker
//! survives as [`Dfg::evaluate_reference`], a differential oracle the
//! property tests replay against the VM — it must never change
//! independently of the VM's semantics.

use crate::graph::{Dfg, NodeKind, Op};
use crate::{DfgError, Result};
use std::collections::HashMap;

impl Dfg {
    /// Evaluates the graph for one set of input values, keyed by input
    /// variable name; returns the output variable values.
    ///
    /// Lowers the graph and runs the bytecode VM. Each call pays one
    /// lowering pass; hot loops should call [`Dfg::lower`] once and then
    /// [`Program::evaluate`](crate::Program::evaluate) or the positional
    /// [`Program::run`](crate::Program::run).
    ///
    /// # Errors
    ///
    /// * [`DfgError::MissingInput`] when `inputs` lacks a named input.
    /// * [`DfgError::NonFiniteValue`] when an operation produces NaN or
    ///   infinity (for example division by zero).
    pub fn evaluate(&self, inputs: &HashMap<String, f64>) -> Result<HashMap<String, f64>> {
        self.lower().evaluate(inputs)
    }

    /// The legacy tree-walking interpreter, retained verbatim as the
    /// differential oracle for the bytecode VM: the test suite asserts
    /// that [`Program::evaluate`](crate::Program::evaluate) is
    /// bit-identical to this on random graphs and on every registry
    /// workload. Shipping code paths use the VM; do not call this except
    /// to compare against it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Dfg::evaluate`].
    pub fn evaluate_reference(
        &self,
        inputs: &HashMap<String, f64>,
    ) -> Result<HashMap<String, f64>> {
        let mut values = vec![0.0f64; self.nodes.len()];
        let mut outputs = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let value = match &node.kind {
                NodeKind::Input(name) => *inputs
                    .get(name)
                    .ok_or_else(|| DfgError::MissingInput(name.clone()))?,
                NodeKind::Compute(op) => {
                    let args: Vec<f64> = node.operands.iter().map(|o| values[o.index()]).collect();
                    self.apply(*op, &args)
                }
                NodeKind::Output(name) => {
                    let v = values[node.operands[0].index()];
                    outputs.insert(name.clone(), v);
                    v
                }
            };
            if !value.is_finite() {
                return Err(DfgError::NonFiniteValue { node: i });
            }
            values[i] = value;
        }
        Ok(outputs)
    }

    fn apply(&self, op: Op, args: &[f64]) -> f64 {
        let bits = |x: f64| x as u64;
        match op {
            Op::Add => args[0] + args[1],
            Op::Sub => args[0] - args[1],
            Op::Mul => args[0] * args[1],
            Op::Div => args[0] / args[1],
            Op::Mod => args[0].rem_euclid(args[1]),
            Op::Min => args[0].min(args[1]),
            Op::Max => args[0].max(args[1]),
            Op::Abs => args[0].abs(),
            Op::Neg => -args[0],
            Op::Sqrt => args[0].sqrt(),
            Op::And => (bits(args[0]) & bits(args[1])) as f64,
            Op::Or => (bits(args[0]) | bits(args[1])) as f64,
            Op::Xor => (bits(args[0]) ^ bits(args[1])) as f64,
            Op::Not => (!(bits(args[0]) as u32)) as f64,
            Op::Shl => ((bits(args[0])) << (bits(args[1]) & 63)) as f64,
            Op::Shr => ((bits(args[0])) >> (bits(args[1]) & 63)) as f64,
            Op::CmpLt => f64::from(args[0] < args[1]),
            Op::CmpEq => f64::from(args[0] == args[1]),
            Op::Select => {
                if args[0] != 0.0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            Op::Sigmoid => 1.0 / (1.0 + (-args[0]).exp()),
            Op::Lut { table } => {
                // lint:allow(no-panic-paths): DfgBuilder::build validates every Lut op's table id before a graph can exist
                let t = self.table(table).expect("lut table registered at build");
                t[(bits(args[0]) & 0xff) as usize] as f64
            }
            Op::Copy => args[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DfgBuilder;
    use accelwall_stats::rng::Rng;

    fn eval1(op: Op, args: &[f64]) -> f64 {
        let mut b = DfgBuilder::new("t");
        let ids: Vec<_> = args
            .iter()
            .enumerate()
            .map(|(i, _)| b.input(format!("x{i}")))
            .collect();
        let r = b.op(op, &ids);
        b.output("y", r);
        let g = b.build().unwrap();
        let inputs: HashMap<String, f64> = args
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("x{i}"), v))
            .collect();
        let vm = g.evaluate(&inputs).unwrap();
        // Every single-op evaluation doubles as a VM-vs-oracle check.
        assert_eq!(vm, g.evaluate_reference(&inputs).unwrap());
        vm["y"]
    }

    #[test]
    fn arithmetic_ops() {
        assert_eq!(eval1(Op::Add, &[2.0, 3.0]), 5.0);
        assert_eq!(eval1(Op::Sub, &[2.0, 3.0]), -1.0);
        assert_eq!(eval1(Op::Mul, &[2.0, 3.0]), 6.0);
        assert_eq!(eval1(Op::Div, &[7.0, 2.0]), 3.5);
        assert_eq!(eval1(Op::Mod, &[7.0, 3.0]), 1.0);
        assert_eq!(eval1(Op::Min, &[2.0, 3.0]), 2.0);
        assert_eq!(eval1(Op::Max, &[2.0, 3.0]), 3.0);
        assert_eq!(eval1(Op::Abs, &[-2.5]), 2.5);
        assert_eq!(eval1(Op::Neg, &[2.5]), -2.5);
        assert_eq!(eval1(Op::Sqrt, &[9.0]), 3.0);
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            eval1(Op::And, &[0b1100 as f64, 0b1010 as f64]),
            0b1000 as f64
        );
        assert_eq!(
            eval1(Op::Or, &[0b1100 as f64, 0b1010 as f64]),
            0b1110 as f64
        );
        assert_eq!(
            eval1(Op::Xor, &[0b1100 as f64, 0b1010 as f64]),
            0b0110 as f64
        );
        assert_eq!(eval1(Op::Shl, &[1.0, 4.0]), 16.0);
        assert_eq!(eval1(Op::Shr, &[16.0, 4.0]), 1.0);
        assert_eq!(eval1(Op::Not, &[0.0]), u32::MAX as f64);
    }

    #[test]
    fn comparison_and_select() {
        assert_eq!(eval1(Op::CmpLt, &[1.0, 2.0]), 1.0);
        assert_eq!(eval1(Op::CmpLt, &[2.0, 1.0]), 0.0);
        assert_eq!(eval1(Op::CmpEq, &[2.0, 2.0]), 1.0);
        assert_eq!(eval1(Op::Select, &[1.0, 10.0, 20.0]), 10.0);
        assert_eq!(eval1(Op::Select, &[0.0, 10.0, 20.0]), 20.0);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((eval1(Op::Sigmoid, &[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lut_indexes_table() {
        let mut b = DfgBuilder::new("t");
        let mut table = [0u8; 256];
        table[7] = 42;
        let t = b.register_table(table);
        let x = b.input("x");
        let r = b.op(Op::Lut { table: t }, &[x]);
        b.output("y", r);
        let g = b.build().unwrap();
        let out = g
            .evaluate(&HashMap::from([("x".to_string(), 7.0)]))
            .unwrap();
        assert_eq!(out["y"], 42.0);
    }

    #[test]
    fn missing_input_errors() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        b.output("y", x);
        let g = b.build().unwrap();
        assert!(matches!(
            g.evaluate(&HashMap::new()),
            Err(DfgError::MissingInput(_))
        ));
        assert_eq!(
            g.evaluate(&HashMap::new()),
            g.evaluate_reference(&HashMap::new())
        );
    }

    #[test]
    fn division_by_zero_reported() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let z = b.input("z");
        let d = b.op(Op::Div, &[x, z]);
        b.output("y", d);
        let g = b.build().unwrap();
        let inputs = HashMap::from([("x".to_string(), 1.0), ("z".to_string(), 0.0)]);
        assert!(matches!(
            g.evaluate(&inputs),
            Err(DfgError::NonFiniteValue { .. })
        ));
        // The VM reports the same node index as the oracle.
        assert_eq!(g.evaluate(&inputs), g.evaluate_reference(&inputs));
    }

    #[test]
    fn fig11_evaluates() {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        let g = b.build().unwrap();
        let out = g
            .evaluate(&HashMap::from([
                ("d1".to_string(), 6.0),
                ("d2".to_string(), 4.0),
                ("d3".to_string(), 2.0),
            ]))
            .unwrap();
        assert_eq!(out["o1"], (6.0 + 4.0) - 4.0 / 2.0);
        assert_eq!(out["o2"], 4.0 / 2.0 + 2.0);
    }

    /// Builds a random DFG with `n` compute vertices drawn from the full
    /// opcode set (the chipdb synthesizer's RNG pattern: SplitMix64-seeded
    /// xoshiro256++), returning the graph and a random input assignment.
    fn random_dfg(seed: u64) -> (Dfg, HashMap<String, f64>) {
        let mut rng = Rng::seed(seed);
        let mut b = DfgBuilder::new(format!("rand{seed}"));
        let mut table = [0u8; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = (rng.next_u64() ^ i as u64) as u8;
        }
        let lut = b.register_table(table);
        let n_inputs = rng.range(2, 6) as usize;
        let mut pool: Vec<_> = (0..n_inputs).map(|i| b.input(format!("x{i}"))).collect();
        let mut inputs = HashMap::new();
        for i in 0..n_inputs {
            // A mix of small integers (bitwise-friendly) and reals,
            // including zero so division errors get exercised too.
            let v = if rng.flip() {
                rng.below(17) as f64
            } else {
                rng.uniform(-4.0, 4.0)
            };
            inputs.insert(format!("x{i}"), v);
        }
        const OPS: [Op; 22] = [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Mod,
            Op::Min,
            Op::Max,
            Op::Abs,
            Op::Neg,
            Op::Sqrt,
            Op::And,
            Op::Or,
            Op::Xor,
            Op::Not,
            Op::Shl,
            Op::Shr,
            Op::CmpLt,
            Op::CmpEq,
            Op::Select,
            Op::Sigmoid,
            Op::Copy,
            Op::Lut { table: 0 },
        ];
        let n_ops = rng.range(4, 40) as usize;
        for _ in 0..n_ops {
            let mut op = OPS[rng.index(OPS.len())];
            if let Op::Lut { .. } = op {
                op = Op::Lut { table: lut };
            }
            let operands: Vec<_> = (0..op.arity())
                .map(|_| pool[rng.index(pool.len())])
                .collect();
            let id = b.op(op, &operands);
            pool.push(id);
        }
        let n_outs = rng.range(1, 4) as usize;
        for o in 0..n_outs {
            b.output(format!("o{o}"), pool[rng.index(pool.len())]);
        }
        (b.build().unwrap(), inputs)
    }

    #[test]
    fn vm_is_bit_identical_to_the_oracle_on_random_graphs() {
        for seed in 0..200 {
            let (g, inputs) = random_dfg(seed);
            let vm = g.lower().evaluate(&inputs);
            let oracle = g.evaluate_reference(&inputs);
            // Exact equality on both the Ok and Err sides: same output
            // names, same f64 bits, same failing node index.
            assert_eq!(vm, oracle, "seed {seed}");
            if let (Ok(vm), Ok(oracle)) = (&vm, &oracle) {
                for (name, value) in vm {
                    assert_eq!(
                        value.to_bits(),
                        oracle[name].to_bits(),
                        "seed {seed} output {name}"
                    );
                }
            }
        }
    }

    #[test]
    fn positional_run_matches_named_evaluation_on_random_graphs() {
        for seed in 200..260 {
            let (g, inputs) = random_dfg(seed);
            let p = g.lower();
            let fed: Vec<f64> = p.input_slots().iter().map(|(n, _)| inputs[n]).collect();
            match (p.run(&fed), p.evaluate(&inputs)) {
                (Ok(positional), Ok(named)) => {
                    for ((name, _), v) in p.output_slots().iter().zip(&positional) {
                        assert_eq!(v.to_bits(), named[name].to_bits(), "seed {seed} {name}");
                    }
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "seed {seed}"),
                (a, b) => panic!("seed {seed}: run {a:?} vs evaluate {b:?}"),
            }
        }
    }
}
