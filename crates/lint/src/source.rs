//! A lexed source file plus the two per-file analyses every rule shares:
//! which lines are test-only code, and where `// lint:allow` escape
//! hatches sit.
//!
//! Test scope matters because the repo policy the `no-panic-paths` rule
//! enforces ("no `unwrap` outside tests") is about *shipping* code:
//! `#[cfg(test)]` items, `mod tests` bodies, and `#[test]` functions are
//! exempt, as are whole files that live under `tests/`, `benches/`, or
//! `examples/`.
//!
//! The escape hatch is deliberately noisy to use: an allow comment must
//! name the rule it silences *and* carry a justification after a colon —
//! `// lint:allow(no-panic-paths): writes to a String cannot fail`.
//! A bare `// lint:allow(rule)` is itself a finding, so suppressions
//! stay reviewable instead of accreting silently.

use crate::ast::ParsedFile;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::parser;
use std::path::PathBuf;

/// One `// lint:allow(rule): justification` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule name inside the parentheses.
    pub rule: String,
    /// The justification after the colon, trimmed; empty when missing.
    pub justification: String,
    /// 1-based line the comment sits on.
    pub line: usize,
}

/// A loaded, lexed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Absolute path on disk.
    pub abs_path: PathBuf,
    /// The raw source text.
    pub text: String,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// The item tree over the code-token view (see
    /// [`SourceFile::code_tokens`]); token ranges in it index that view.
    pub parsed: ParsedFile,
    /// `test_lines[line - 1]` is true when that line is test-only code.
    pub test_lines: Vec<bool>,
    /// Every `lint:allow` comment in the file.
    pub allows: Vec<Allow>,
    /// Whether the whole file is test collateral (under `tests/`,
    /// `benches/`, or `examples/`).
    pub test_file: bool,
}

impl SourceFile {
    /// Lexes `text` and runs the shared per-file analyses.
    pub fn new(rel_path: String, abs_path: PathBuf, text: String) -> SourceFile {
        let tokens = tokenize(&text);
        let line_count = text.lines().count().max(1);
        let test_file = {
            let parts: Vec<&str> = rel_path.split('/').collect();
            parts
                .iter()
                .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        };
        let mut test_lines = vec![test_file; line_count];
        if !test_file {
            mark_test_spans(&tokens, &mut test_lines);
        }
        let allows = collect_allows(&tokens);
        let parsed = {
            let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
            parser::parse(&code)
        };
        SourceFile {
            rel_path,
            abs_path,
            text,
            tokens,
            parsed,
            test_lines,
            allows,
            test_file,
        }
    }

    /// Whether `line` (1-based) is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(self.test_file)
    }

    /// The allow comment (if any) that covers a finding of `rule` on
    /// `line`: either a trailing comment on the same line or a comment on
    /// the line directly above.
    pub fn allow_for(&self, rule: &str, line: usize) -> Option<&Allow> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// The non-comment tokens, for rules that match on code structure.
    pub fn code_tokens(&self) -> Vec<&Token> {
        self.tokens.iter().filter(|t| !t.is_comment()).collect()
    }
}

/// Marks the line spans of `#[cfg(test)]` items, `#[test]` functions, and
/// `mod tests { ... }` bodies.
///
/// The walk is token-based: after a test attribute (or the `mod tests`
/// header) it finds the item's opening `{` and its brace-matched close.
/// String and comment contents were already folded into single tokens by
/// the lexer, so brace counting cannot be fooled by braces in literals.
fn mark_test_spans(tokens: &[Token], test_lines: &mut [bool]) {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i < code.len() {
        let start = code[i];
        let is_attr_open = start.is_punct("#") && code.get(i + 1).is_some_and(|t| t.is_punct("["));
        if is_attr_open {
            // Scan the attribute body for the `test` / `cfg(test)` marker.
            // A `test` inside `not(...)` (as in `#[cfg(not(test))]`) means
            // the opposite — shipping code — so track the paren depth at
            // which a `not` group opened and ignore idents inside it.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut paren_depth = 0usize;
            let mut not_depth: Option<usize> = None;
            let mut has_test = false;
            while j < code.len() && depth > 0 {
                let t = code[j];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("(") {
                    if code
                        .get(j.wrapping_sub(1))
                        .is_some_and(|p| p.is_ident("not"))
                        && not_depth.is_none()
                    {
                        not_depth = Some(paren_depth);
                    }
                    paren_depth += 1;
                } else if t.is_punct(")") {
                    paren_depth = paren_depth.saturating_sub(1);
                    if not_depth == Some(paren_depth) {
                        not_depth = None;
                    }
                } else if t.is_ident("test") && not_depth.is_none() {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                if let Some((open, close)) = item_body(&code, j) {
                    mark(test_lines, start.line, close.line.max(open.line));
                }
                // Also cover the attribute lines themselves.
                mark(test_lines, start.line, code[j.saturating_sub(1)].line);
            }
            i = j;
            continue;
        }
        if start.is_ident("mod") && code.get(i + 1).is_some_and(|t| t.is_ident("tests")) {
            if let Some((open, close)) = item_body(&code, i + 2) {
                mark(test_lines, start.line, close.line.max(open.line));
            }
        }
        i += 1;
    }
}

/// From `from`, finds the next `{` (stopping at `;`, which means the item
/// has no body) and returns the open and its brace-matched close token.
fn item_body<'t>(code: &[&'t Token], from: usize) -> Option<(&'t Token, &'t Token)> {
    let mut i = from;
    while i < code.len() {
        let t = code[i];
        if t.is_punct(";") {
            return None;
        }
        if t.is_punct("{") {
            let open = t;
            let mut depth = 1usize;
            let mut j = i + 1;
            while j < code.len() {
                if code[j].is_punct("{") {
                    depth += 1;
                } else if code[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, code[j]));
                    }
                }
                j += 1;
            }
            return Some((open, code[code.len() - 1]));
        }
        i += 1;
    }
    None
}

fn mark(test_lines: &mut [bool], from_line: usize, to_line: usize) {
    for line in from_line..=to_line {
        if let Some(slot) = test_lines.get_mut(line.saturating_sub(1)) {
            *slot = true;
        }
    }
}

/// Pulls every `lint:allow(rule): justification` out of the comments.
///
/// A directive must *be* the comment: `lint:allow(` right at the start of
/// a plain `//` or `/* */` comment. Doc comments (`///`, `//!`, `/**`,
/// `/*!`) and prose that merely mentions the syntax are documentation,
/// not suppressions.
fn collect_allows(tokens: &[Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment && t.kind != TokenKind::BlockComment {
            continue;
        }
        let Some(body) = plain_comment_body(&t.text) else {
            continue;
        };
        let Some(rest) = body.trim_start().strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justification = rest[close + 1..]
            .strip_prefix(':')
            .map(|j| {
                let j = j.trim();
                // Stop at a block-comment terminator if present.
                j.split("*/").next().unwrap_or(j).trim().to_string()
            })
            .unwrap_or_default();
        allows.push(Allow {
            rule,
            justification,
            line: t.line,
        });
    }
    allows
}

/// The content of a plain (non-doc) comment, or `None` for doc comments.
fn plain_comment_body(text: &str) -> Option<&str> {
    if let Some(rest) = text.strip_prefix("//") {
        if rest.starts_with('/') || rest.starts_with('!') {
            return None;
        }
        return Some(rest);
    }
    if let Some(rest) = text.strip_prefix("/*") {
        if rest.starts_with('*') || rest.starts_with('!') {
            return None;
        }
        return Some(rest);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(
            rel.to_string(),
            Path::new("/nonexistent").into(),
            src.into(),
        )
    }

    #[test]
    fn cfg_test_modules_are_test_scope() {
        let src = "fn shipping() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { x.unwrap(); }\n\
                   }\n\
                   fn also_shipping() {}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn bare_mod_tests_is_test_scope() {
        let src = "mod tests {\n    fn f() {}\n}\nfn shipping() {}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(4));
    }

    #[test]
    fn test_attribute_covers_one_function() {
        let src = "#[test]\nfn case() {\n    boom();\n}\nfn shipping() {}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, unix))]\nmod tests {\n    fn f() {}\n}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_shipping_code() {
        let src = "#[cfg(not(test))]\nfn shipping() {\n    work();\n}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn files_under_tests_benches_examples_are_all_test() {
        for rel in [
            "tests/cli.rs",
            "crates/stats/tests/properties.rs",
            "crates/bench/benches/serve.rs",
            "examples/quickstart.rs",
        ] {
            assert!(file(rel, "fn f() { x.unwrap(); }").is_test_line(1), "{rel}");
        }
        assert!(!file("crates/x/src/lib.rs", "fn f() {}").is_test_line(1));
    }

    #[test]
    fn allows_parse_rule_and_justification() {
        let src = "x(); // lint:allow(no-panic-paths): provably infallible\n\
                   y(); // lint:allow(float-hygiene)\n";
        let f = file("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].rule, "no-panic-paths");
        assert_eq!(f.allows[0].justification, "provably infallible");
        assert_eq!(f.allows[0].line, 1);
        assert!(f.allows[1].justification.is_empty());
    }

    #[test]
    fn allow_covers_same_line_and_next_line() {
        let src = "// lint:allow(rule-a): above\nx();\ny(); // lint:allow(rule-b): trailing\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.allow_for("rule-a", 2).is_some());
        assert!(f.allow_for("rule-b", 3).is_some());
        assert!(f.allow_for("rule-a", 3).is_none());
        assert!(f.allow_for("rule-b", 2).is_none());
    }

    #[test]
    fn doc_comments_and_prose_mentions_are_not_directives() {
        let src = "//! docs may cite lint:allow(rule-a): not a directive\n\
                   /// silence with `// lint:allow(rule-b): <why>`\n\
                   // prose mentioning lint:allow(rule-c): mid-comment\n\
                   /* block prose about lint:allow(rule-d): also not */\n\
                   fn f() {}\n\
                   /* lint:allow(rule-e): a real block directive */ x();\n";
        let f = file("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "rule-e");
        assert_eq!(f.allows[0].justification, "a real block directive");
    }

    #[test]
    fn string_braces_do_not_derail_span_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn f() {}\n}\nfn shipping() {}\n";
        let f = file("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }
}
