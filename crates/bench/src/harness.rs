//! A minimal, dependency-free benchmark harness with a Criterion-shaped
//! API surface.
//!
//! The workspace builds in offline environments where registry crates
//! (including criterion) cannot be resolved, so the benches in
//! `benches/` run on this drop-in subset instead: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], and the
//! [`criterion_group!`](crate::criterion_group) /
//! [`criterion_main!`](crate::criterion_main) macros. Timings are
//! wall-clock means over a fixed sample count after a warm-up window —
//! no outlier rejection or statistical testing, which is fine for the
//! deterministic analytics these benches measure.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark closure.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            config: self.clone(),
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name, b.mean_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.clone(),
        }
    }
}

/// A named group of benchmarks (subset of `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    config: Criterion,
}

impl BenchmarkGroup {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            config: self.config.clone(),
            mean_ns: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.mean_ns);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            config: self.config.clone(),
            mean_ns: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.mean_ns);
        self
    }

    /// Closes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier (subset of `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id carrying only a parameter rendering.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{p}", name.into()))
    }
}

/// Per-benchmark timing driver handed to the closure.
#[derive(Debug)]
pub struct Bencher {
    config: Criterion,
    mean_ns: f64,
}

impl Bencher {
    /// Times the routine: warm-up window, then `sample_size` samples of
    /// adaptively-batched iterations within the measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a single-iteration cost.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up || iters == 0 {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;

        // Batch so each sample takes ~measurement/sample_size seconds.
        let sample_target = self.config.measurement.as_secs_f64() / self.config.sample_size as f64;
        let batch = ((sample_target / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut total_ns = 0.0;
        let mut total_iters = 0u64;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters as f64;
    }
}

fn report(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<44} time: {value:>10.3} {unit}/iter");
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::harness::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_cheap_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &k| {
            b.iter(|| hits += k);
        });
        group.finish();
        assert!(hits >= 3);
    }
}
