//! Minimal HTTP/1.1 request parsing and response serialization.
//!
//! The server speaks just enough HTTP for its routes. Parsing is
//! incremental: [`parse_bytes`] inspects a byte buffer and either yields
//! one complete request (plus how many bytes it consumed, so pipelined
//! requests behind it stay in the buffer) or reports that more bytes are
//! needed. The reactor feeds it from nonblocking sockets;
//! [`read_request`] wraps the same parser in a blocking read loop for
//! plain `Read` streams (tests, tools).
//!
//! Requests are HTTP/1.1 keep-alive by default: a connection stays open
//! after a response unless the request was HTTP/1.0 (without
//! `Connection: keep-alive`), carried `Connection: close`, or failed to
//! parse. [`Response::head_bytes`] renders the header block for either
//! persistence mode with `Content-Length` always present, so responses
//! can be framed without sender-side close; [`Response::write_to`]
//! remains the one-shot close-mode serializer.
//!
//! Strict size limits bound memory: anything that fails them gets a
//! precise 4xx rather than a hang or a panic — the parser never indexes
//! unchecked and never allocates proportionally to attacker input
//! beyond the caps.

use std::io::{Read, Write};

/// Upper bound on the request head (request line + all headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// Upper bound on a request body (`POST /query` specs are tiny; this is
/// orders of magnitude of headroom).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request: head plus any `Content-Length` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target with any query string split off.
    pub path: String,
    /// The raw query string (bytes after `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order, names verbatim.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the connection should persist after the response:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and a
    /// `Connection: close` / `keep-alive` header overrides either way.
    pub keep_alive: bool,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for a plain-text rendering.
    pub fn wants_plain_text(&self) -> bool {
        self.header("accept")
            .is_some_and(|accept| accept.contains("text/plain"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`].
    TooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`] (413 on the wire).
    BodyTooLarge,
    /// The bytes were not a well-formed HTTP/1.x request.
    Malformed(&'static str),
    /// The socket failed or timed out before a full request arrived.
    Io(std::io::Error),
}

/// What [`parse_bytes`] found at the front of the buffer.
#[derive(Debug)]
pub enum ParseOutcome {
    /// One complete request; `consumed` bytes belong to it and should be
    /// drained off the buffer before the next parse.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied (head + body).
        consumed: usize,
    },
    /// The buffer holds only a prefix of a request so far.
    Partial {
        /// Whether the head is already complete (the parser is waiting
        /// on body bytes) — distinguishes "closed mid-head" from
        /// "closed mid-body" for callers that see EOF.
        head_done: bool,
    },
}

/// Incrementally parses the front of `buf` as one HTTP/1.x request.
///
/// The buffer may hold a partial request, exactly one, or several
/// pipelined back to back; only the first is parsed and `consumed`
/// reports where it ends. Re-invoking on a grown buffer is cheap: the
/// head is scanned for its terminating blank line first, and nothing is
/// allocated until the head is complete.
///
/// # Errors
///
/// See [`RequestError`]; the caller maps the variants onto 431/413/400
/// responses. [`RequestError::Io`] is never returned from here.
pub fn parse_bytes(buf: &[u8]) -> Result<ParseOutcome, RequestError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        return Ok(ParseOutcome::Partial { head_done: false });
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(RequestError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RequestError::Malformed("non-UTF-8 in head"))?;
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed("bad method"));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Malformed("bad request target"));
    }
    if !(version.starts_with("HTTP/1.") && parts.next().is_none()) {
        return Err(RequestError::Malformed("bad HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the blank line terminating the head
        }
        if headers.len() == MAX_HEADERS {
            return Err(RequestError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::Malformed("bad header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let mut request = Request {
        keep_alive: version != "HTTP/1.0",
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(connection) = request.header("connection") {
        let mut tokens = connection.split(',').map(str::trim);
        if tokens.any(|t| t.eq_ignore_ascii_case("close")) {
            request.keep_alive = false;
        } else if connection
            .split(',')
            .any(|t| t.trim().eq_ignore_ascii_case("keep-alive"))
        {
            request.keep_alive = true;
        }
    }
    let mut consumed = head_end;
    if let Some(value) = request.header("content-length") {
        let length: usize = value
            .parse()
            .map_err(|_| RequestError::Malformed("bad Content-Length"))?;
        if length > MAX_BODY_BYTES {
            return Err(RequestError::BodyTooLarge);
        }
        if buf.len() < head_end + length {
            return Ok(ParseOutcome::Partial { head_done: true });
        }
        request.body = buf[head_end..head_end + length].to_vec();
        consumed += length;
    }
    Ok(ParseOutcome::Complete { request, consumed })
}

/// Finds the byte offset just past the head's terminating blank line
/// (`\r\n\r\n`, or the bare-LF forms the parser tolerates). `None` when
/// the head is still incomplete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    // An immediately-empty first line ("\r\n..." / "\n...") still counts
    // as a complete (malformed) head, matching the line-based parser.
    if buf.starts_with(b"\r\n") {
        return Some(2);
    }
    if buf.starts_with(b"\n") {
        return Some(1);
    }
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            let rest = &buf[i + 1..];
            if rest.starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if rest.starts_with(b"\n") {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Reads and parses one request (head and, when `Content-Length` is
/// present, body) from a blocking `stream`, looping [`parse_bytes`]
/// over accumulated bytes.
///
/// # Errors
///
/// See [`RequestError`]; the caller maps the variants onto 431/413/400
/// responses or drops the connection on I/O failure.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4 * 1024];
    loop {
        let head_done = match parse_bytes(&buf)? {
            ParseOutcome::Complete { request, .. } => return Ok(request),
            ParseOutcome::Partial { head_done } => head_done,
        };
        let n = stream.read(&mut chunk).map_err(RequestError::Io)?;
        if n == 0 {
            // EOF mid-head means the client never sent a request worth
            // answering; EOF mid-body is an I/O-level truncation.
            return Err(if head_done {
                RequestError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            } else {
                RequestError::Malformed("connection closed mid-head")
            });
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// One response; the persistence mode is chosen at serialization time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `Allow` header for 405 responses.
    pub allow: Option<&'static str>,
    /// Extra `Retry-After` header (seconds) for 500/503/504 responses
    /// whose failure is expected to heal.
    pub retry_after: Option<u64>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON body (already serialized).
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            allow: None,
            retry_after: None,
            body: body.into(),
        }
    }

    /// A plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            allow: None,
            retry_after: None,
            body: body.into(),
        }
    }

    /// A `405 Method Not Allowed` advertising the one accepted method.
    pub fn method_not_allowed(allow: &'static str) -> Response {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            allow: Some(allow),
            retry_after: None,
            body: format!("method not allowed; use {allow}\n").into_bytes(),
        }
    }

    /// Adds a `Retry-After: {seconds}` header (how soon a retry of a
    /// failed target may succeed).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Renders the full header block — status line through the blank
    /// line — for the given persistence mode. `Content-Length` is always
    /// present, so the body that follows is self-framing either way.
    pub fn head_bytes(&self, keep_alive: bool) -> Vec<u8> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            connection,
        );
        if let Some(allow) = self.allow {
            head.push_str("Allow: ");
            head.push_str(allow);
            head.push_str("\r\n");
        }
        if let Some(seconds) = self.retry_after {
            head.push_str("Retry-After: ");
            head.push_str(&seconds.to_string());
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        head.into_bytes()
    }

    /// Serializes status line, headers, and body onto `out` in one-shot
    /// close mode (`Connection: close`).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the connection is closed anyway).
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        out.write_all(&self.head_bytes(false))?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: text/plain\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.body.is_empty());
        assert_eq!(req.header("accept"), Some("text/plain"));
        assert_eq!(req.header("ACCEPT"), Some("text/plain"));
        assert!(req.wants_plain_text());
    }

    #[test]
    fn splits_the_query_string_off_the_path() {
        let req = parse("GET /query?workload=fft&node=7nm HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "workload=fft&node=7nm");
        // A bare '?' leaves an empty query, not a mangled path.
        let req = parse("GET /query? HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "");
    }

    #[test]
    fn reads_a_content_length_body() {
        let req =
            parse("POST /query HTTP/1.1\r\nContent-Length: 19\r\n\r\n{\"workload\": \"fft\"}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"workload\": \"fft\"}");
    }

    #[test]
    fn caps_and_validates_the_body() {
        let over = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&over), Err(RequestError::BodyTooLarge)));
        // A non-numeric length is malformed, not a hang.
        let bad = "POST /query HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(parse(bad), Err(RequestError::Malformed(_))));
        // A truncated body surfaces as I/O, not a short read.
        let short = "POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(short), Err(RequestError::Io(_))));
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "",                              // empty
            "GET\r\n\r\n",                   // no target
            "GET /x\r\n\r\n",                // no version
            "get /x HTTP/1.1\r\n\r\n",       // lower-case method
            "GET x HTTP/1.1\r\n\r\n",        // target without leading slash
            "GET /x SMTP/1.0\r\n\r\n",       // wrong protocol
            "GET /x HTTP/1.1 extra\r\n\r\n", // trailing junk
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",
            "GET /x HTTP/1.1\r\nHost", // closed mid-head
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn caps_head_size_and_header_count() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&long), Err(RequestError::TooLarge)));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "h: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(parse(&many), Err(RequestError::TooLarge)));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        // HTTP/1.1 defaults to keep-alive; 1.0 defaults to close.
        assert!(parse("GET / HTTP/1.1\r\n\r\n").unwrap().keep_alive);
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        // Connection header overrides either default, case-insensitively
        // and inside token lists.
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
                .unwrap()
                .keep_alive
        );
        assert!(
            !parse("GET / HTTP/1.1\r\nConnection: close, upgrade\r\n\r\n")
                .unwrap()
                .keep_alive
        );
    }

    #[test]
    fn parse_bytes_reports_partial_and_pipelined_requests() {
        // Partial head, then partial body, then complete + leftover.
        assert!(matches!(
            parse_bytes(b"GET / HTT").unwrap(),
            ParseOutcome::Partial { head_done: false }
        ));
        assert!(matches!(
            parse_bytes(b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab").unwrap(),
            ParseOutcome::Partial { head_done: true }
        ));
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let ParseOutcome::Complete { request, consumed } = parse_bytes(two).unwrap() else {
            panic!("first request should be complete");
        };
        assert_eq!(request.path, "/a");
        assert_eq!(consumed, 19);
        let ParseOutcome::Complete { request, .. } = parse_bytes(&two[consumed..]).unwrap() else {
            panic!("second request should be complete");
        };
        assert_eq!(request.path, "/b");
    }

    /// Drains every complete request off the front of `buf`.
    fn drain_complete(buf: &mut Vec<u8>) -> Vec<Request> {
        let mut requests = Vec::new();
        loop {
            match parse_bytes(buf).unwrap() {
                ParseOutcome::Complete { request, consumed } => {
                    requests.push(request);
                    buf.drain(..consumed);
                }
                ParseOutcome::Partial { .. } => return requests,
            }
        }
    }

    #[test]
    fn incremental_parse_is_identical_at_every_split_boundary() {
        // A pipelined stream of three requests — query string, POST with
        // body, and a plain-text GET — split at every byte boundary; the
        // parsed sequence must match the single-buffer parse exactly.
        let stream: Vec<u8> = [
            &b"GET /query?workload=fft&lanes=4 HTTP/1.1\r\nHost: t\r\n\r\n"[..],
            &b"POST /query HTTP/1.1\r\nContent-Length: 19\r\n\r\n{\"workload\": \"fft\"}"[..],
            &b"GET /experiments/fig3a HTTP/1.1\r\nAccept: text/plain\r\nConnection: close\r\n\r\n"
                [..],
        ]
        .concat();
        let mut whole = stream.clone();
        let reference = drain_complete(&mut whole);
        assert_eq!(reference.len(), 3);
        assert!(whole.is_empty());
        for split in 1..stream.len() {
            let mut buf = stream[..split].to_vec();
            let mut requests = drain_complete(&mut buf);
            buf.extend_from_slice(&stream[split..]);
            requests.extend(drain_complete(&mut buf));
            assert_eq!(requests, reference, "split at byte {split} diverged");
            assert!(buf.is_empty(), "split at byte {split} left residue");
        }
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        Response::method_not_allowed("GET")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET\r\n"));

        let mut out = Vec::new();
        Response::json(504, "{}")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
    }

    #[test]
    fn head_bytes_renders_both_persistence_modes() {
        let response = Response::json(200, "{}");
        let keep = String::from_utf8(response.head_bytes(true)).unwrap();
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert!(keep.contains("Content-Length: 2\r\n"));
        assert!(keep.ends_with("\r\n\r\n"));
        let close = String::from_utf8(response.head_bytes(false)).unwrap();
        assert!(close.contains("Connection: close\r\n"));
    }
}
