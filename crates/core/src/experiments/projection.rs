//! Projection-layer experiments: the accelerator-wall figures
//! (Figs. 15–16), the physical-parameter roster (Table V), the headroom
//! summary (`wall`), the post-wall trajectories (`beyond`), and the
//! Table V sensitivity study.

use accelwall_projection::{accelerator_wall, beyond_wall, wall_sensitivity, Domain, TargetMetric};

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// The shared Fig. 15 / Fig. 16 body: per-domain wall projections.
fn fig1516(metric: TargetMetric) -> Result<Artifact> {
    let fig = match metric {
        TargetMetric::Performance => "Fig. 15",
        TargetMetric::EnergyEfficiency => "Fig. 16",
    };
    let mut walls = Vec::new();
    for &d in Domain::all() {
        walls.push(accelerator_wall(d, metric)?);
    }
    let json = walls
        .iter()
        .map(|w| {
            Value::object([
                ("domain", Value::from(w.domain.to_string())),
                ("unit", Value::from(w.domain.unit(w.metric))),
                ("physical_limit", Value::from(w.physical_limit)),
                ("current_best", Value::from(w.current_best)),
                ("linear_wall", Value::from(w.linear_wall)),
                ("log_wall", Value::from(w.log_wall)),
                ("further_linear", Value::from(w.further_linear)),
                ("further_log", Value::from(w.further_log)),
            ])
        })
        .collect();
    let mut text = String::new();
    outln!(
        text,
        "{fig} — accelerator {} projections at the 5nm limit",
        match metric {
            TargetMetric::Performance => "performance",
            TargetMetric::EnergyEfficiency => "energy-efficiency",
        }
    );
    outln!(
        text,
        "{:<22} {:>10} {:>12} {:>12} {:>12} {:>16}",
        "domain",
        "phys lim",
        "current",
        "log wall",
        "linear wall",
        "headroom(log-lin)"
    );
    for w in &walls {
        outln!(
            text,
            "{:<22} {:>9.0}x {:>12.3e} {:>12.3e} {:>12.3e} {:>7.1}x-{:.1}x  [{}]",
            w.domain.to_string(),
            w.physical_limit,
            w.current_best,
            w.log_wall,
            w.linear_wall,
            w.further_log,
            w.further_linear,
            w.domain.unit(w.metric)
        );
    }
    Ok(Artifact::new(json, text))
}

/// Fig. 15 — accelerator performance walls at the 5 nm limit.
pub struct Fig15;

impl Experiment for Fig15 {
    fn id(&self) -> &'static str {
        "fig15"
    }

    fn description(&self) -> &'static str {
        "accelerator performance walls at 5nm"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        fig1516(TargetMetric::Performance)
    }
}

/// Fig. 16 — accelerator energy-efficiency walls at the 5 nm limit.
pub struct Fig16;

impl Experiment for Fig16 {
    fn id(&self) -> &'static str {
        "fig16"
    }

    fn description(&self) -> &'static str {
        "accelerator energy-efficiency walls at 5nm"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        fig1516(TargetMetric::EnergyEfficiency)
    }
}

/// Table V — the per-domain physical parameters behind the projections.
pub struct Table5;

impl Experiment for Table5 {
    fn id(&self) -> &'static str {
        "table5"
    }

    fn description(&self) -> &'static str {
        "accelerator wall physical parameters"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let json = Domain::all()
            .iter()
            .map(|d| {
                let l = d.limits();
                Value::object([
                    ("domain", Value::from(d.to_string())),
                    ("platform", Value::from(d.platform())),
                    ("min_die_mm2", Value::from(l.min_die_mm2)),
                    ("max_die_mm2", Value::from(l.max_die_mm2)),
                    ("tdp_w", Value::from(l.tdp_w)),
                    ("freq_mhz", Value::from(l.freq_mhz)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(text, "Table V — accelerator wall physical parameters");
        outln!(
            text,
            "{:<22} {:<9} {:>16} {:>10} {:>10}",
            "domain",
            "platform",
            "die min/max mm2",
            "TDP W",
            "MHz"
        );
        for d in Domain::all() {
            let l = d.limits();
            outln!(
                text,
                "{:<22} {:<9} {:>16} {:>10} {:>10}",
                d.to_string(),
                d.platform(),
                format!("{}/{}", l.min_die_mm2, l.max_die_mm2),
                l.tdp_w,
                l.freq_mhz
            );
        }
        Ok(Artifact::new(json, text))
    }
}

/// The headroom summary across domains (the `wall` target).
pub struct Wall;

impl Experiment for Wall {
    fn id(&self) -> &'static str {
        "wall"
    }

    fn description(&self) -> &'static str {
        "remaining headroom summary across domains"
    }

    fn deps(&self) -> &'static [&'static str] {
        // The summary condenses the two wall figures; keep them earlier
        // in the schedule so a full run reads top-down.
        &["fig15", "fig16"]
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let mut rows = Vec::new();
        for &d in Domain::all() {
            let p = accelerator_wall(d, TargetMetric::Performance)?;
            let e = accelerator_wall(d, TargetMetric::EnergyEfficiency)?;
            rows.push((d, p, e));
        }
        let json = rows
            .iter()
            .map(|(d, p, e)| {
                Value::object([
                    ("domain", Value::from(d.to_string())),
                    (
                        "performance_headroom",
                        Value::object([
                            ("log", Value::from(p.further_log)),
                            ("linear", Value::from(p.further_linear)),
                        ]),
                    ),
                    (
                        "efficiency_headroom",
                        Value::object([
                            ("log", Value::from(e.further_log)),
                            ("linear", Value::from(e.further_linear)),
                        ]),
                    ),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "The Accelerator Wall — remaining headroom at the end of CMOS scaling (5nm)"
        );
        outln!(
            text,
            "{:<22} {:>24} {:>24}",
            "domain",
            "performance (log-lin)",
            "efficiency (log-lin)"
        );
        for (d, p, e) in &rows {
            outln!(
                text,
                "{:<22} {:>13.1}x - {:>5.1}x {:>14.1}x - {:>5.1}x",
                d.to_string(),
                p.further_log,
                p.further_linear,
                e.further_log,
                e.further_linear
            );
        }
        outln!(text);
        outln!(
            text,
            "paper: video 3-130x / 1.2-14x; GPU 1.4-2.5x / 1.4-1.7x;"
        );
        outln!(
            text,
            "       FPGA CNN 2.1-3.4x / 2.7-3.5x; Bitcoin 2-20x / 1.4-5x"
        );
        Ok(Artifact::new(json, text))
    }
}

/// Post-wall trajectories in years (the `beyond` target).
pub struct Beyond;

impl Experiment for Beyond {
    fn id(&self) -> &'static str {
        "beyond"
    }

    fn description(&self) -> &'static str {
        "post-wall trajectories in years"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let mut rows = Vec::new();
        for &d in Domain::all() {
            rows.push(beyond_wall(d, TargetMetric::Performance)?);
        }
        let json = rows
            .iter()
            .map(|b| {
                Value::object([
                    ("domain", Value::from(b.domain.to_string())),
                    ("historical_cagr", Value::from(b.historical_cagr)),
                    ("csr_cagr", Value::from(b.csr_cagr)),
                    (
                        "runway_years",
                        Value::object([
                            ("log", Value::from(b.runway_years_log)),
                            ("linear", Value::from(b.runway_years_linear)),
                        ]),
                    ),
                    ("required_csr_speedup", Value::from(b.required_csr_speedup)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(text, "Beyond the wall — performance trajectories in years");
        outln!(
            text,
            "{:<22} {:>10} {:>10} {:>18} {:>14}",
            "domain",
            "gain %/yr",
            "CSR %/yr",
            "runway (log-lin)",
            "CSR gap"
        );
        for b in &rows {
            let gap = if b.required_csr_speedup.is_finite() {
                format!("{:.0}x", b.required_csr_speedup)
            } else {
                "inf".to_string()
            };
            outln!(
                text,
                "{:<22} {:>9.0}% {:>9.0}% {:>8.1}-{:.1} years {:>14}",
                b.domain.to_string(),
                b.historical_cagr * 100.0,
                b.csr_cagr * 100.0,
                b.runway_years_log,
                b.runway_years_linear,
                gap
            );
        }
        outln!(text);
        outln!(
            text,
            "runway: how long the projected headroom lasts at the historical rate;"
        );
        outln!(
            text,
            "CSR gap: how much faster design skill must improve, post-CMOS, to keep pace."
        );
        Ok(Artifact::new(json, text))
    }
}

/// Wall sensitivity to the Table V parameters (±20%).
pub struct Sensitivity;

impl Experiment for Sensitivity {
    fn id(&self) -> &'static str {
        "sensitivity"
    }

    fn description(&self) -> &'static str {
        "wall sensitivity to Table V parameters"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let mut all = Vec::new();
        for &d in Domain::all() {
            all.extend(wall_sensitivity(d, TargetMetric::Performance)?);
        }
        let json = all
            .iter()
            .map(|r| {
                Value::object([
                    ("domain", Value::from(r.domain.to_string())),
                    ("parameter", Value::from(r.parameter.to_string())),
                    ("wall_minus", Value::from(r.wall_minus)),
                    ("wall_base", Value::from(r.wall_base)),
                    ("wall_plus", Value::from(r.wall_plus)),
                    ("elasticity", Value::from(r.elasticity)),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Wall sensitivity to Table V parameters (performance, ±20%)"
        );
        outln!(
            text,
            "{:<22} {:<11} {:>12} {:>12} {:>12} {:>11}",
            "domain",
            "parameter",
            "wall @-20%",
            "wall @base",
            "wall @+20%",
            "elasticity"
        );
        for r in &all {
            outln!(
                text,
                "{:<22} {:<11} {:>12.3e} {:>12.3e} {:>12.3e} {:>11.2}",
                r.domain.to_string(),
                r.parameter.to_string(),
                r.wall_minus,
                r.wall_base,
                r.wall_plus,
                r.elasticity
            );
        }
        Ok(Artifact::new(json, text))
    }
}
