//! Minimal HTTP/1.1 request parsing and response writing.
//!
//! The server speaks just enough HTTP for its routes: it reads one
//! request head (request line + headers) under strict size limits, then
//! a `Content-Length`-delimited body under its own cap, answers, and
//! closes the connection (`Connection: close` on every response).
//! Socket read/write timeouts — set by the caller before parsing —
//! bound slow-loris clients; the size limits below bound memory.
//! Anything that fails these checks gets a precise 4xx rather than a
//! hang or a panic: the parser never indexes unchecked and never
//! allocates proportionally to attacker input beyond the caps.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + all headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 64;

/// Upper bound on a request body (`POST /query` specs are tiny; this is
/// orders of magnitude of headroom).
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request: head plus any `Content-Length` body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verbatim (`GET`, `POST`, ...).
    pub method: String,
    /// The request target with any query string split off.
    pub path: String,
    /// The raw query string (bytes after `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs in arrival order, names verbatim.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive single-header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for a plain-text rendering.
    pub fn wants_plain_text(&self) -> bool {
        self.header("accept")
            .is_some_and(|accept| accept.contains("text/plain"))
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`].
    TooLarge,
    /// `Content-Length` exceeded [`MAX_BODY_BYTES`] (413 on the wire).
    BodyTooLarge,
    /// The bytes were not a well-formed HTTP/1.x request.
    Malformed(&'static str),
    /// The socket failed or timed out before a full request arrived.
    Io(std::io::Error),
}

/// Reads and parses one request (head and, when `Content-Length` is
/// present, body) from `stream`.
///
/// The body must be read here: the internal `BufReader` may already
/// hold body bytes after the head, and they are lost once the reader
/// is dropped.
///
/// # Errors
///
/// See [`RequestError`]; the caller maps the variants onto 431/413/400
/// responses or drops the connection on I/O failure.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    let mut reader = BufReader::with_capacity(MAX_HEAD_BYTES, stream);
    let mut budget = 0usize;
    let request_line = read_line(&mut reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let version = parts.next().unwrap_or("");
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(RequestError::Malformed("bad method"));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Malformed("bad request target"));
    }
    if !(version.starts_with("HTTP/1.") && parts.next().is_none()) {
        return Err(RequestError::Malformed("bad HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(RequestError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(RequestError::Malformed("header without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(RequestError::Malformed("bad header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if let Some(value) = request.header("content-length") {
        let length: usize = value
            .parse()
            .map_err(|_| RequestError::Malformed("bad Content-Length"))?;
        if length > MAX_BODY_BYTES {
            return Err(RequestError::BodyTooLarge);
        }
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).map_err(RequestError::Io)?;
        request.body = body;
    }
    Ok(request)
}

/// Reads one CRLF- (or LF-) terminated line, charging its length against
/// the shared head budget.
fn read_line(reader: &mut impl BufRead, consumed: &mut usize) -> Result<String, RequestError> {
    let mut line = Vec::new();
    loop {
        let available = reader.fill_buf().map_err(RequestError::Io)?;
        if available.is_empty() {
            return Err(RequestError::Malformed("connection closed mid-head"));
        }
        let newline = available.iter().position(|&b| b == b'\n');
        let take = newline.map_or(available.len(), |i| i + 1);
        if *consumed + line.len() + take > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        line.extend_from_slice(&available[..take]);
        reader.consume(take);
        if newline.is_some() {
            break;
        }
    }
    *consumed += line.len();
    while matches!(line.last(), Some(b'\n' | b'\r')) {
        line.pop();
    }
    String::from_utf8(line).map_err(|_| RequestError::Malformed("non-UTF-8 in head"))
}

/// One response, always sent with `Connection: close`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra `Allow` header for 405 responses.
    pub allow: Option<&'static str>,
    /// Extra `Retry-After` header (seconds) for 500/503/504 responses
    /// whose failure is expected to heal.
    pub retry_after: Option<u64>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON body (already serialized).
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "application/json",
            allow: None,
            retry_after: None,
            body: body.into(),
        }
    }

    /// A plain-text body.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            allow: None,
            retry_after: None,
            body: body.into(),
        }
    }

    /// A `405 Method Not Allowed` advertising the one accepted method.
    pub fn method_not_allowed(allow: &'static str) -> Response {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            allow: Some(allow),
            retry_after: None,
            body: format!("method not allowed; use {allow}\n").into_bytes(),
        }
    }

    /// Adds a `Retry-After: {seconds}` header (how soon a retry of a
    /// failed target may succeed).
    #[must_use]
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// Serializes status line, headers, and body onto `out`.
    ///
    /// # Errors
    ///
    /// Propagates socket write failures (the connection is closed anyway).
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
        );
        if let Some(allow) = self.allow {
            head.push_str("Allow: ");
            head.push_str(allow);
            head.push_str("\r\n");
        }
        if let Some(seconds) = self.retry_after {
            head.push_str("Retry-After: ");
            head.push_str(&seconds.to_string());
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        out.write_all(head.as_bytes())?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// The standard reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, RequestError> {
        read_request(&mut raw.as_bytes())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: text/plain\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.body.is_empty());
        assert_eq!(req.header("accept"), Some("text/plain"));
        assert_eq!(req.header("ACCEPT"), Some("text/plain"));
        assert!(req.wants_plain_text());
    }

    #[test]
    fn splits_the_query_string_off_the_path() {
        let req = parse("GET /query?workload=fft&node=7nm HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "workload=fft&node=7nm");
        // A bare '?' leaves an empty query, not a mangled path.
        let req = parse("GET /query? HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/query");
        assert_eq!(req.query, "");
    }

    #[test]
    fn reads_a_content_length_body() {
        let req =
            parse("POST /query HTTP/1.1\r\nContent-Length: 19\r\n\r\n{\"workload\": \"fft\"}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"workload\": \"fft\"}");
    }

    #[test]
    fn caps_and_validates_the_body() {
        let over = format!(
            "POST /query HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&over), Err(RequestError::BodyTooLarge)));
        // A non-numeric length is malformed, not a hang.
        let bad = "POST /query HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
        assert!(matches!(parse(bad), Err(RequestError::Malformed(_))));
        // A truncated body surfaces as I/O, not a short read.
        let short = "POST /query HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(matches!(parse(short), Err(RequestError::Io(_))));
    }

    #[test]
    fn tolerates_bare_lf_line_endings() {
        let req = parse("GET / HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/");
    }

    #[test]
    fn rejects_malformed_heads() {
        for raw in [
            "",                              // empty
            "GET\r\n\r\n",                   // no target
            "GET /x\r\n\r\n",                // no version
            "get /x HTTP/1.1\r\n\r\n",       // lower-case method
            "GET x HTTP/1.1\r\n\r\n",        // target without leading slash
            "GET /x SMTP/1.0\r\n\r\n",       // wrong protocol
            "GET /x HTTP/1.1 extra\r\n\r\n", // trailing junk
            "GET /x HTTP/1.1\r\nno-colon\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",
            "GET /x HTTP/1.1\r\nHost", // closed mid-head
        ] {
            assert!(
                matches!(parse(raw), Err(RequestError::Malformed(_))),
                "{raw:?} should be malformed"
            );
        }
    }

    #[test]
    fn caps_head_size_and_header_count() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&long), Err(RequestError::TooLarge)));
        let many = format!(
            "GET / HTTP/1.1\r\n{}\r\n",
            "h: v\r\n".repeat(MAX_HEADERS + 1)
        );
        assert!(matches!(parse(&many), Err(RequestError::TooLarge)));
    }

    #[test]
    fn responses_serialize_with_length_and_close() {
        let mut out = Vec::new();
        Response::text(200, "ok\n").write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));

        let mut out = Vec::new();
        Response::method_not_allowed("GET")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 405 Method Not Allowed\r\n"));
        assert!(text.contains("Allow: GET\r\n"));

        let mut out = Vec::new();
        Response::json(504, "{}")
            .with_retry_after(2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
    }
}
