//! A cycle-by-cycle list scheduler — the detailed counterpart of the
//! analytical bound model in [`crate::sim`].
//!
//! [`simulate`](crate::simulate) prices a design point with the classic
//! `max(critical path, work / lanes)` bound, which is exact for the
//! regular graphs accelerators like and optimistic for irregular ones.
//! This module actually *schedules* the graph: a ready queue drained in
//! priority order (longest remaining path first), `partition_factor` issue
//! lanes per cycle, multi-cycle functional units, serialization passes,
//! and heterogeneous fusion chains of dependent single-cycle operations
//! within a lane's cycle.
//!
//! Two classical results pin the relationship between the two models, and
//! the test suite enforces both:
//!
//! * the bound is (close to) a true lower bound: `scheduled ≳ analytical`;
//! * Graham's bound: list scheduling is within 2× of optimal without
//!   fusion, so `scheduled ≤ 2 × analytical` there.
//!
//! One deliberate fidelity difference: the bound model credits the fusion
//! window to *every* single-cycle operation, while the scheduler only
//! fuses chains that actually exist in the graph — the
//! `ablation/scheduler_fidelity` benchmark quantifies the gap.

use crate::fu;
use crate::sim::{simulate_lowered, DesignConfig, SimReport};
use crate::{Result, SimError};
use accelwall_dfg::{Dfg, NodeId, NodeKind, Program, VertexClass};
use std::collections::BinaryHeap;

/// When each node executed under the list schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Per-node issue cycle, indexed by node id.
    pub start_cycle: Vec<u64>,
    /// Per-node completion cycle (exclusive), indexed by node id.
    pub finish_cycle: Vec<u64>,
    /// Total schedule length in cycles.
    pub makespan: u64,
    /// Peak number of lanes busy in any cycle.
    pub peak_lanes_busy: u64,
    /// Average lane occupancy over the makespan, in `[0, 1]`.
    pub utilization: f64,
}

impl Schedule {
    /// Verifies the schedule respects every data dependence of `dfg`:
    /// a consumer may not start before each operand's completion, except
    /// same-cycle starts, which are exactly the fused chains — and chains
    /// can only pass through single-cycle fusible operations, so a
    /// same-cycle start over any other kind of operand (an input, an
    /// output, a multi-cycle unit) is a dependence violation.
    pub fn respects_dependences(&self, dfg: &Dfg) -> bool {
        dfg.ids().all(|id| {
            dfg.node(id).operands.iter().all(|op| {
                self.finish_cycle[op.index()] <= self.start_cycle[id.index()]
                    || (self.start_cycle[op.index()] == self.start_cycle[id.index()]
                        && matches!(&dfg.node(*op).kind, NodeKind::Compute(o)
                            if fu::cost(*o).fusible && fu::cost(*o).latency_cycles == 1))
            })
        })
    }
}

#[derive(PartialEq, Eq)]
struct Ready {
    priority: u64,
    index: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority; tie-break on index for determinism.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.index.cmp(&self.index))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Latency in cycles of node `id` under `config` (fusion handled by the
/// scheduler, not here).
fn latency(dfg: &Dfg, id: NodeId, config: &DesignConfig) -> u64 {
    let passes = u64::from(config.serial_passes());
    match &dfg.node(id).kind {
        NodeKind::Input(_) | NodeKind::Output(_) => 1,
        NodeKind::Compute(op) => {
            let c = fu::cost(*op);
            if c.fusible {
                passes
            } else {
                u64::from(c.latency_cycles) * passes
            }
        }
    }
}

fn chainable(dfg: &Dfg, id: NodeId, config: &DesignConfig) -> bool {
    matches!(&dfg.node(id).kind, NodeKind::Compute(op) if fu::cost(*op).fusible)
        && latency(dfg, id, config) == 1
}

/// Runs the list scheduler for a lowered `program` under `config`.
///
/// The scheduler walks the flat SoA arrays directly: per-vertex latency
/// and chainability come from one precomputed pass over the opcode
/// column, consumer fan-out from the CSR consumer table (whose rows keep
/// ascending id order, preserving the tie-break of the original
/// adjacency-list walk), and the ready heap holds plain `u32`-sized
/// indices. Schedules are bit-identical to [`schedule_reference`].
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for out-of-range knobs and
/// [`SimError::EmptyGraph`] for graphs without compute vertices.
pub fn schedule_lowered(program: &Program, config: &DesignConfig) -> Result<Schedule> {
    config.validate()?;
    if program.stats().computes == 0 {
        return Err(SimError::EmptyGraph);
    }
    let n = program.vertex_count();
    let passes = u64::from(config.serial_passes());

    // Per-vertex latency and chainability, one pass over the opcode column
    // (fusion handled by the scheduler, not here).
    let mut lat = vec![0u64; n];
    let mut chain_ok = vec![false; n];
    let mut is_compute = vec![false; n];
    for v in 0..n {
        match program.class(v) {
            VertexClass::Input | VertexClass::Output => lat[v] = 1,
            VertexClass::Compute => {
                let c = fu::cost(program.opcode(v));
                lat[v] = if c.fusible {
                    passes
                } else {
                    u64::from(c.latency_cycles) * passes
                };
                chain_ok[v] = c.fusible && lat[v] == 1;
                is_compute[v] = true;
            }
        }
    }

    // Operand counts; consumers come straight from the CSR table.
    let mut pending_ops: Vec<usize> = (0..n).map(|v| program.operands(v).len()).collect();

    // Longest-path-to-exit priorities (latency-weighted), reverse topo.
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let downstream = program
            .consumers(i)
            .iter()
            .map(|&c| prio[c as usize])
            .max()
            .unwrap_or(0);
        prio[i] = lat[i] + downstream;
    }

    let lanes = config.partition_factor;
    let window = u64::from(config.fusion_window());

    let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
    let mut queued = vec![false; n];
    for i in 0..n {
        if pending_ops[i] == 0 {
            ready.push(Ready {
                priority: prio[i],
                index: i,
            });
            queued[i] = true;
        }
    }

    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut issued = vec![false; n];
    let mut done = vec![false; n];
    let mut completed = 0usize;
    let mut cycle: u64 = 0;
    let mut peak_busy = 0u64;
    let mut busy_lane_cycles = 0u64;
    // Min-heap of (finish cycle, node index) for in-flight work.
    let mut in_flight: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    // Lanes pre-reserved in future cycles by serialized (multi-pass)
    // operations, which occupy their narrow datapath for every pass.
    let mut reserved: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    // Nodes released mid-cycle by inline (fused) completions; eligible
    // from the *next* cycle unless consumed by the chain itself.
    let mut released: Vec<usize> = Vec::new();

    while completed < n {
        let mut busy = reserved.remove(&cycle).unwrap_or(0).min(lanes);
        released.clear();

        while busy < lanes {
            // Pop the highest-priority node not yet issued.
            let head = loop {
                match ready.pop() {
                    Some(r) if !issued[r.index] => break Some(r.index),
                    Some(_) => {}
                    None => break None,
                }
            };
            let Some(head) = head else { break };
            busy += 1;

            // Execute a chain of up to `window` dependent fusible ops.
            let mut chain_len = 0u64;
            let mut current = head;
            loop {
                issued[current] = true;
                start[current] = cycle;
                chain_len += 1;
                if chain_ok[current] && chain_len <= window {
                    // Completes within this cycle.
                    finish[current] = cycle + 1;
                    done[current] = true;
                    completed += 1;
                    for &c in program.consumers(current) {
                        let c = c as usize;
                        pending_ops[c] -= 1;
                        if pending_ops[c] == 0 {
                            released.push(c);
                        }
                    }
                    if chain_len < window {
                        // Extend the chain with the best dependent op that
                        // just became ready.
                        let next = program
                            .consumers(current)
                            .iter()
                            .map(|&c| c as usize)
                            .filter(|&c| !issued[c] && pending_ops[c] == 0 && chain_ok[c])
                            .max_by_key(|&c| prio[c]);
                        if let Some(c) = next {
                            current = c;
                            continue;
                        }
                    }
                    break;
                }
                finish[current] = cycle + lat[current].max(1);
                in_flight.push(std::cmp::Reverse((finish[current], current)));
                // A serialized op monopolizes its lane for every pass;
                // pipelined multi-cycle units free the issue slot.
                if passes > 1 && is_compute[current] {
                    for d in 1..passes {
                        *reserved.entry(cycle + d).or_insert(0) += 1;
                    }
                }
                break;
            }
        }
        peak_busy = peak_busy.max(busy);
        busy_lane_cycles += busy;

        // Advance time; if the machine idled, jump to the next completion.
        cycle += 1;
        if busy == 0 {
            if let Some(std::cmp::Reverse((t, _))) = in_flight.peek() {
                cycle = cycle.max(*t);
            }
        }

        // Retire in-flight work.
        while let Some(&std::cmp::Reverse((t, idx))) = in_flight.peek() {
            if t > cycle {
                break;
            }
            in_flight.pop();
            done[idx] = true;
            completed += 1;
            for &c in program.consumers(idx) {
                let c = c as usize;
                pending_ops[c] -= 1;
                if pending_ops[c] == 0 {
                    released.push(c);
                }
            }
        }

        // Queue everything released this cycle.
        for &c in &released {
            if !queued[c] && !issued[c] {
                ready.push(Ready {
                    priority: prio[c],
                    index: c,
                });
                queued[c] = true;
            }
        }
    }

    let makespan = finish.iter().copied().max().unwrap_or(0);
    Ok(Schedule {
        start_cycle: start,
        finish_cycle: finish,
        makespan,
        peak_lanes_busy: peak_busy,
        utilization: if makespan == 0 {
            0.0
        } else {
            busy_lane_cycles as f64 / (makespan as f64 * lanes as f64)
        },
    })
}

/// Runs the list scheduler for `dfg` under `config` — the front-end
/// convenience over [`schedule_lowered`] that lowers per call. Hot loops
/// should lower once with [`Dfg::lower`] and share the program.
///
/// # Errors
///
/// Same as [`schedule_lowered`].
pub fn schedule(dfg: &Dfg, config: &DesignConfig) -> Result<Schedule> {
    schedule_lowered(&dfg.lower(), config)
}

/// The original adjacency-list list scheduler, kept verbatim as the
/// differential oracle for [`schedule_lowered`]: the property suite
/// asserts both produce bit-identical [`Schedule`]s on random graphs and
/// on every registry workload. Do not call it except to compare — it
/// re-walks the pointer-chasing `Dfg` representation on every query.
///
/// # Errors
///
/// Same as [`schedule_lowered`].
pub fn schedule_reference(dfg: &Dfg, config: &DesignConfig) -> Result<Schedule> {
    config.validate()?;
    if dfg.compute_ids().is_empty() {
        return Err(SimError::EmptyGraph);
    }
    let n = dfg.vertex_count();
    let ids: Vec<NodeId> = dfg.ids().collect();

    // Consumers and operand counts.
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending_ops: Vec<usize> = vec![0; n];
    for &id in &ids {
        pending_ops[id.index()] = dfg.node(id).operands.len();
        for op in &dfg.node(id).operands {
            consumers[op.index()].push(id.index());
        }
    }

    // Longest-path-to-exit priorities (latency-weighted), reverse topo.
    let mut prio = vec![0u64; n];
    for i in (0..n).rev() {
        let own = latency(dfg, ids[i], config);
        let downstream = consumers[i].iter().map(|&c| prio[c]).max().unwrap_or(0);
        prio[i] = own + downstream;
    }

    let lanes = config.partition_factor;
    let window = u64::from(config.fusion_window());

    let mut ready: BinaryHeap<Ready> = BinaryHeap::new();
    let mut queued = vec![false; n];
    for i in 0..n {
        if pending_ops[i] == 0 {
            ready.push(Ready {
                priority: prio[i],
                index: i,
            });
            queued[i] = true;
        }
    }

    let mut start = vec![0u64; n];
    let mut finish = vec![0u64; n];
    let mut issued = vec![false; n];
    let mut done = vec![false; n];
    let mut completed = 0usize;
    let mut cycle: u64 = 0;
    let mut peak_busy = 0u64;
    let mut busy_lane_cycles = 0u64;
    // Min-heap of (finish cycle, node index) for in-flight work.
    let mut in_flight: BinaryHeap<std::cmp::Reverse<(u64, usize)>> = BinaryHeap::new();
    // Lanes pre-reserved in future cycles by serialized (multi-pass)
    // operations, which occupy their narrow datapath for every pass.
    let mut reserved: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let passes = u64::from(config.serial_passes());
    // Nodes released mid-cycle by inline (fused) completions; eligible
    // from the *next* cycle unless consumed by the chain itself.
    let mut released: Vec<usize> = Vec::new();

    while completed < n {
        let mut busy = reserved.remove(&cycle).unwrap_or(0).min(lanes);
        released.clear();

        while busy < lanes {
            // Pop the highest-priority node not yet issued.
            let head = loop {
                match ready.pop() {
                    Some(r) if !issued[r.index] => break Some(r.index),
                    Some(_) => {}
                    None => break None,
                }
            };
            let Some(head) = head else { break };
            busy += 1;

            // Execute a chain of up to `window` dependent fusible ops.
            let mut chain_len = 0u64;
            let mut current = head;
            loop {
                issued[current] = true;
                start[current] = cycle;
                chain_len += 1;
                let lat = latency(dfg, ids[current], config);
                if chainable(dfg, ids[current], config) && chain_len <= window {
                    // Completes within this cycle.
                    finish[current] = cycle + 1;
                    done[current] = true;
                    completed += 1;
                    for &c in &consumers[current] {
                        pending_ops[c] -= 1;
                        if pending_ops[c] == 0 {
                            released.push(c);
                        }
                    }
                    if chain_len < window {
                        // Extend the chain with the best dependent op that
                        // just became ready.
                        let next = consumers[current]
                            .iter()
                            .copied()
                            .filter(|&c| {
                                !issued[c] && pending_ops[c] == 0 && chainable(dfg, ids[c], config)
                            })
                            .max_by_key(|&c| prio[c]);
                        if let Some(c) = next {
                            current = c;
                            continue;
                        }
                    }
                    break;
                }
                finish[current] = cycle + lat.max(1);
                in_flight.push(std::cmp::Reverse((finish[current], current)));
                // A serialized op monopolizes its lane for every pass;
                // pipelined multi-cycle units free the issue slot.
                if passes > 1 && matches!(dfg.node(ids[current]).kind, NodeKind::Compute(_)) {
                    for d in 1..passes {
                        *reserved.entry(cycle + d).or_insert(0) += 1;
                    }
                }
                break;
            }
        }
        peak_busy = peak_busy.max(busy);
        busy_lane_cycles += busy;

        // Advance time; if the machine idled, jump to the next completion.
        cycle += 1;
        if busy == 0 {
            if let Some(std::cmp::Reverse((t, _))) = in_flight.peek() {
                cycle = cycle.max(*t);
            }
        }

        // Retire in-flight work.
        while let Some(&std::cmp::Reverse((t, idx))) = in_flight.peek() {
            if t > cycle {
                break;
            }
            in_flight.pop();
            done[idx] = true;
            completed += 1;
            for &c in &consumers[idx] {
                pending_ops[c] -= 1;
                if pending_ops[c] == 0 {
                    released.push(c);
                }
            }
        }

        // Queue everything released this cycle.
        for &c in &released {
            if !queued[c] && !issued[c] {
                ready.push(Ready {
                    priority: prio[c],
                    index: c,
                });
                queued[c] = true;
            }
        }
    }

    let makespan = finish.iter().copied().max().unwrap_or(0);
    Ok(Schedule {
        start_cycle: start,
        finish_cycle: finish,
        makespan,
        peak_lanes_busy: peak_busy,
        utilization: if makespan == 0 {
            0.0
        } else {
            busy_lane_cycles as f64 / (makespan as f64 * lanes as f64)
        },
    })
}

/// Runs the list scheduler and prices the schedule with the same energy,
/// area, and leakage models as [`crate::simulate`], returning a
/// [`SimReport`] whose cycle count is the *scheduled* makespan rather than
/// the analytical bound.
///
/// # Errors
///
/// Same as [`schedule`].
pub fn simulate_scheduled(dfg: &Dfg, config: &DesignConfig) -> Result<SimReport> {
    // One lowering feeds both the scheduler and the analytical pricing.
    let program = dfg.lower();
    let sched = schedule_lowered(&program, config)?;
    let analytical = simulate_lowered(&program, config)?;
    let cycles = sched.makespan as f64;
    let runtime_s = cycles / (crate::sim::CLOCK_GHZ * 1e9);
    Ok(SimReport {
        cycles,
        runtime_s,
        // Energy, leakage, and area depend on the work and the hardware,
        // not on the schedule order.
        dynamic_energy_j: analytical.dynamic_energy_j,
        leakage_w: analytical.leakage_w,
        area_units: analytical.area_units,
        ops: analytical.ops,
        critical_path_cycles: analytical.critical_path_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use accelwall_cmos::TechNode;
    use accelwall_workloads::Workload;

    fn configs() -> Vec<DesignConfig> {
        vec![
            DesignConfig::baseline(),
            DesignConfig::new(TechNode::N45, 16, 1, false),
            DesignConfig::new(TechNode::N7, 256, 5, true),
            DesignConfig::new(TechNode::N5, 4096, 9, true),
        ]
    }

    #[test]
    fn schedules_respect_dependences() {
        for &w in &[Workload::Trd, Workload::Fft, Workload::Nwn, Workload::Aes] {
            let dfg = w.default_instance();
            for config in configs() {
                let s = schedule(&dfg, &config).unwrap();
                assert!(s.respects_dependences(&dfg), "{w} {config:?}");
            }
        }
    }

    #[test]
    fn every_node_scheduled_exactly_once() {
        let dfg = Workload::Gmm.default_instance();
        let s = schedule(&dfg, &DesignConfig::new(TechNode::N45, 8, 1, false)).unwrap();
        for id in dfg.ids() {
            assert!(
                s.finish_cycle[id.index()] > s.start_cycle[id.index()],
                "{id} never completed"
            );
        }
        assert!(s.makespan > 0);
    }

    #[test]
    fn lane_limit_respected() {
        let dfg = Workload::Red.default_instance();
        for lanes in [1u64, 4, 64] {
            let config = DesignConfig::new(TechNode::N45, lanes, 1, false);
            let s = schedule(&dfg, &config).unwrap();
            assert!(
                s.peak_lanes_busy <= lanes,
                "lanes {lanes}: peak {}",
                s.peak_lanes_busy
            );
        }
    }

    #[test]
    fn single_lane_serializes_everything() {
        let dfg = Workload::Sad.default_instance();
        let s = schedule(&dfg, &DesignConfig::baseline()).unwrap();
        // One lane, no fusion: makespan at least one cycle per node.
        assert!(s.makespan as usize >= dfg.vertex_count());
        assert_eq!(s.peak_lanes_busy, 1);
    }

    #[test]
    fn analytical_bound_is_a_lower_bound_without_fusion() {
        for &w in &[Workload::Trd, Workload::S2d, Workload::Srt, Workload::Mdy] {
            let dfg = w.default_instance();
            for p in [1u64, 16, 1024] {
                let config = DesignConfig::new(TechNode::N45, p, 1, false);
                let bound = simulate(&dfg, &config).unwrap().cycles;
                let actual = schedule(&dfg, &config).unwrap().makespan as f64;
                assert!(
                    actual >= bound * 0.99,
                    "{w} P={p}: scheduled {actual} below bound {bound}"
                );
            }
        }
    }

    #[test]
    fn graham_bound_holds() {
        for &w in Workload::all() {
            let dfg = w.default_instance();
            let config = DesignConfig::new(TechNode::N45, 64, 1, false);
            let bound = simulate(&dfg, &config).unwrap().cycles;
            let actual = schedule(&dfg, &config).unwrap().makespan as f64;
            assert!(
                actual <= 2.0 * bound + 8.0,
                "{w}: scheduled {actual} vs bound {bound}"
            );
        }
    }

    #[test]
    fn more_lanes_never_slow_the_schedule_much() {
        // List-scheduling anomalies exist (Graham), but with longest-path
        // priorities the regular workloads behave monotonically.
        let dfg = Workload::S2d.default_instance();
        let mut last = u64::MAX;
        for p in [1u64, 4, 16, 64, 256] {
            let s = schedule(&dfg, &DesignConfig::new(TechNode::N45, p, 1, false)).unwrap();
            assert!(
                s.makespan <= last.saturating_add(last / 8),
                "P={p}: {} after {last}",
                s.makespan
            );
            last = s.makespan;
        }
    }

    #[test]
    fn fusion_reduces_makespan_on_chain_heavy_graphs() {
        let dfg = Workload::Nwn.default_instance();
        let plain = schedule(&dfg, &DesignConfig::new(TechNode::N5, 1024, 1, false)).unwrap();
        let fused = schedule(&dfg, &DesignConfig::new(TechNode::N5, 1024, 1, true)).unwrap();
        assert!(
            fused.makespan < plain.makespan,
            "fused {} vs plain {}",
            fused.makespan,
            plain.makespan
        );
    }

    #[test]
    fn fused_ops_share_start_cycles() {
        // With fusion on and ample lanes, some dependent pairs must start
        // in the same cycle (the chain).
        let dfg = Workload::Red.default_instance();
        let config = DesignConfig::new(TechNode::N5, 4096, 1, true);
        let s = schedule(&dfg, &config).unwrap();
        let mut chained = 0;
        for id in dfg.ids() {
            for op in &dfg.node(id).operands {
                if s.start_cycle[id.index()] == s.start_cycle[op.index()]
                    && matches!(dfg.node(id).kind, NodeKind::Compute(_))
                {
                    chained += 1;
                }
            }
        }
        assert!(chained > 0, "expected at least one fused chain");
    }

    #[test]
    fn scheduled_report_prices_like_analytical() {
        let dfg = Workload::Sad.default_instance();
        let config = DesignConfig::new(TechNode::N7, 64, 5, true);
        let a = simulate(&dfg, &config).unwrap();
        let s = simulate_scheduled(&dfg, &config).unwrap();
        assert_eq!(a.dynamic_energy_j, s.dynamic_energy_j);
        assert_eq!(a.area_units, s.area_units);
        assert!(s.runtime_s > 0.0);
    }

    #[test]
    fn utilization_is_sane() {
        let dfg = Workload::Gmm.default_instance();
        let s = schedule(&dfg, &DesignConfig::new(TechNode::N45, 4, 1, false)).unwrap();
        assert!(
            s.utilization > 0.1 && s.utilization <= 1.0,
            "{}",
            s.utilization
        );
    }

    #[test]
    fn deterministic_schedules() {
        let dfg = Workload::Fft.default_instance();
        let config = DesignConfig::new(TechNode::N7, 32, 3, true);
        let a = schedule(&dfg, &config).unwrap();
        let b = schedule(&dfg, &config).unwrap();
        assert_eq!(a, b);
    }
}
