//! CSR-layer experiments: the specialization stack (Fig. 2) and the
//! GPU-architecture relation-matrix figures (Figs. 6–7).

use accelwall_csr::StackLayer;
use accelwall_studies::gpu;

use super::outln;
use crate::cache::Ctx;
use crate::error::Result;
use crate::experiment::{Artifact, Experiment};
use crate::json::Value;

/// Fig. 2 — the abstraction layers of accelerated systems.
pub struct Fig2;

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn description(&self) -> &'static str {
        "abstraction layers of accelerated systems"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        let json = StackLayer::all()
            .iter()
            .map(|l| {
                Value::object([
                    ("layer", Value::from(l.to_string())),
                    (
                        "specialization_layer",
                        Value::from(l.is_specialization_layer()),
                    ),
                    (
                        "examples",
                        l.examples().iter().map(|e| Value::from(*e)).collect(),
                    ),
                    ("isolating_study", Value::from(l.isolating_study())),
                ])
            })
            .collect();
        let mut text = String::new();
        outln!(
            text,
            "Fig. 2 — abstraction layers of accelerated systems (the specialization stack)"
        );
        for l in StackLayer::all() {
            let tag = if l.is_specialization_layer() {
                "  [specialization stack]"
            } else {
                ""
            };
            outln!(text);
            outln!(text, "{l}{tag}");
            outln!(text, "  examples: {}", l.examples().join(", "));
            if let Some(study) = l.isolating_study() {
                outln!(text, "  isolated by: {study}");
            }
        }
        Ok(Artifact::new(json, text))
    }
}

/// The shared Fig. 6 / Fig. 7 body: gains vs Tesla plus per-arch CSR.
fn fig67(efficiency: bool) -> Result<Artifact> {
    let matrix = gpu::arch_relation_matrix(efficiency)?;
    let rel = matrix.relative_to("Tesla")?;
    let csrs = gpu::arch_csr(efficiency)?;
    let json = rel
        .iter()
        .map(|(arch, gain)| {
            let csr = csrs.iter().find(|(a, _)| a == arch).map(|(_, c)| *c);
            Value::object([
                ("arch", Value::from(arch.as_str())),
                ("gain_vs_tesla", Value::from(*gain)),
                ("csr", Value::from(csr)),
            ])
        })
        .collect();
    let (fig, what) = if efficiency {
        ("Fig. 7", "energy efficiency")
    } else {
        ("Fig. 6", "throughput")
    };
    let mut text = String::new();
    outln!(
        text,
        "{fig} — GPU architecture + CMOS scaling: {what} (Eqs. 3-4 relation matrix)"
    );
    outln!(
        text,
        "{:<14} {:>16} {:>8}",
        "architecture",
        "gain vs Tesla",
        "CSR"
    );
    for (arch, gain) in &rel {
        let csr = csrs
            .iter()
            .find(|(a, _)| a == arch)
            .map(|(_, c)| format!("{c:.2}"))
            .unwrap_or_default();
        outln!(text, "{:<14} {:>16.2} {:>8}", arch, gain, csr);
    }
    Ok(Artifact::new(json, text))
}

/// Fig. 6 — GPU architecture throughput gains via the relation matrix.
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn description(&self) -> &'static str {
        "GPU architecture throughput gains (relation matrix)"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        fig67(false)
    }
}

/// Fig. 7 — GPU architecture energy-efficiency gains.
pub struct Fig7;

impl Experiment for Fig7 {
    fn id(&self) -> &'static str {
        "fig7"
    }

    fn description(&self) -> &'static str {
        "GPU architecture energy-efficiency gains (relation matrix)"
    }

    fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
        fig67(true)
    }
}
