//! Workspace root library: re-exports the facade crate so the integration
//! tests and examples can use one import path.

pub use accelerator_wall::*;
