//! Replays the paper's motivating example (Fig. 1): six generations of
//! Bitcoin-mining ASICs, separating what better transistors delivered from
//! what better design delivered — then asks how much runway is left.
//!
//! Run with: `cargo run --example bitcoin_asic_history`

use accelerator_wall::prelude::*;
use accelerator_wall::studies::bitcoin;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full platform procession: CPU -> GPU -> FPGA -> ASIC (Fig. 9).
    let all = bitcoin::fig9_performance_series()?;
    println!("Bitcoin mining vs the Athlon 64 baseline (GH/s per mm²):");
    for row in &all.rows {
        println!(
            "  {:<30} {:>12.1}x reported {:>10.1}x transistors  CSR {:>8.1}",
            row.label, row.reported_gain, row.physical_gain, row.csr
        );
    }
    println!(
        "\nASICs beat the CPU by {:.0}x — but each platform jump was a one-time boost.",
        all.peak_reported()
    );

    // The ASIC-only race (Fig. 1): once the platform is fixed, CSR stalls.
    let asics = bitcoin::fig1_series()?;
    let last = asics.rows.last().expect("non-empty dataset");
    println!(
        "\nWithin ASICs: performance {:.0}x, transistor performance {:.0}x, CSR only {:.2}x.",
        asics.peak_reported(),
        asics.peak_physical(),
        last.csr
    );
    println!("Most of the 'specialization era' was CMOS scaling wearing a costume.");

    // And the wall (Figs. 15d/16d).
    let perf = accelerator_wall(Domain::BitcoinMining, TargetMetric::Performance)?;
    let ee = accelerator_wall(Domain::BitcoinMining, TargetMetric::EnergyEfficiency)?;
    println!(
        "\nAt the 5nm limit: {:.1}-{:.1}x more performance, {:.1}-{:.1}x more GH/J — then the wall.",
        perf.further_log, perf.further_linear, ee.further_log, ee.further_linear
    );
    Ok(())
}
