//! 2D and 3D stencils (S2D, S3D) — the paper's Fig. 12/13 case study.
//!
//! A stencil filters each interior lattice point with a weighted sum of its
//! neighborhood (9-point in 2D, 27-point in 3D). Filtering is independent
//! across points — the "highly parallel" structure Fig. 12 visualizes —
//! while each point's weighted sum is a small reduction tree.

use accelwall_dfg::{Dfg, DfgBuilder, NodeId, Op};

/// 9-point 2D stencil over a `rows × cols` grid. Weights are the inputs
/// `w0..w8` (row-major over the 3×3 neighborhood); interior outputs only.
///
/// # Panics
///
/// Panics if either dimension is below 3 (no interior points).
pub fn build_2d(rows: usize, cols: usize) -> Dfg {
    assert!(rows >= 3 && cols >= 3, "2D stencil needs a 3x3 interior");
    let mut b = DfgBuilder::new(format!("s2d_{rows}x{cols}"));
    let ws: Vec<NodeId> = (0..9).map(|k| b.input(format!("w{k}"))).collect();
    let grid: Vec<Vec<NodeId>> = (0..rows)
        .map(|r| (0..cols).map(|c| b.input(format!("g{r}_{c}"))).collect())
        .collect();
    for r in 1..rows - 1 {
        for c in 1..cols - 1 {
            let mut terms = Vec::with_capacity(9);
            for (k, (dr, dc)) in neighborhood2().iter().enumerate() {
                let cell = grid[(r as isize + dr) as usize][(c as isize + dc) as usize];
                terms.push(b.op(Op::Mul, &[ws[k], cell]));
            }
            let sum = b.reduce(Op::Add, &terms);
            b.output(format!("o{r}_{c}"), sum);
        }
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("2D stencil graph is structurally valid")
}

/// Reference 9-point 2D stencil.
pub fn stencil2d_reference(grid: &[Vec<f64>], weights: &[f64; 9]) -> Vec<Vec<f64>> {
    let rows = grid.len();
    let cols = grid[0].len();
    let mut out = vec![vec![0.0; cols]; rows];
    for r in 1..rows - 1 {
        for c in 1..cols - 1 {
            out[r][c] = neighborhood2()
                .iter()
                .enumerate()
                .map(|(k, (dr, dc))| {
                    weights[k] * grid[(r as isize + dr) as usize][(c as isize + dc) as usize]
                })
                .sum();
        }
    }
    out
}

/// 27-point 3D stencil over an `nx × ny × nz` lattice, interior outputs
/// only; weights are inputs `w0..w26`.
///
/// # Panics
///
/// Panics if any dimension is below 3.
pub fn build_3d(nx: usize, ny: usize, nz: usize) -> Dfg {
    assert!(
        nx >= 3 && ny >= 3 && nz >= 3,
        "3D stencil needs a 3x3x3 interior"
    );
    let mut b = DfgBuilder::new(format!("s3d_{nx}x{ny}x{nz}"));
    let ws: Vec<NodeId> = (0..27).map(|k| b.input(format!("w{k}"))).collect();
    let mut lattice: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(nx);
    for x in 0..nx {
        let mut plane = Vec::with_capacity(ny);
        for y in 0..ny {
            let mut row = Vec::with_capacity(nz);
            for z in 0..nz {
                row.push(b.input(format!("g{x}_{y}_{z}")));
            }
            plane.push(row);
        }
        lattice.push(plane);
    }
    for x in 1..nx - 1 {
        for y in 1..ny - 1 {
            for z in 1..nz - 1 {
                let mut terms = Vec::with_capacity(27);
                for (k, (dx, dy, dz)) in neighborhood3().iter().enumerate() {
                    let cell = lattice[(x as isize + dx) as usize][(y as isize + dy) as usize]
                        [(z as isize + dz) as usize];
                    terms.push(b.op(Op::Mul, &[ws[k], cell]));
                }
                let sum = b.reduce(Op::Add, &terms);
                b.output(format!("o{x}_{y}_{z}"), sum);
            }
        }
    }
    // lint:allow(no-panic-paths): the graph is assembled from static structure above; build() only fails on programming errors, which this crate's tests catch
    b.build().expect("3D stencil graph is structurally valid")
}

/// Reference 27-point 3D stencil; `lattice[x][y][z]`, weights in
/// [`neighborhood3`] order.
pub fn stencil3d_reference(lattice: &[Vec<Vec<f64>>], weights: &[f64; 27]) -> Vec<Vec<Vec<f64>>> {
    let (nx, ny, nz) = (lattice.len(), lattice[0].len(), lattice[0][0].len());
    let mut out = vec![vec![vec![0.0; nz]; ny]; nx];
    for x in 1..nx - 1 {
        for y in 1..ny - 1 {
            for z in 1..nz - 1 {
                out[x][y][z] = neighborhood3()
                    .iter()
                    .enumerate()
                    .map(|(k, (dx, dy, dz))| {
                        weights[k]
                            * lattice[(x as isize + dx) as usize][(y as isize + dy) as usize]
                                [(z as isize + dz) as usize]
                    })
                    .sum();
            }
        }
    }
    out
}

/// The 3×3 neighborhood offsets in weight order (row-major).
pub fn neighborhood2() -> [(isize, isize); 9] {
    let mut n = [(0, 0); 9];
    let mut k = 0;
    for dr in -1..=1 {
        for dc in -1..=1 {
            n[k] = (dr, dc);
            k += 1;
        }
    }
    n
}

/// The 3×3×3 neighborhood offsets in weight order.
pub fn neighborhood3() -> [(isize, isize, isize); 27] {
    let mut n = [(0, 0, 0); 27];
    let mut k = 0;
    for dx in -1..=1 {
        for dy in -1..=1 {
            for dz in -1..=1 {
                n[k] = (dx, dy, dz);
                k += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn stencil2d_matches_reference() {
        let (rows, cols) = (5, 6);
        let g = build_2d(rows, cols);
        let grid: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| (r * cols + c) as f64 * 0.5 - 3.0)
                    .collect()
            })
            .collect();
        let weights = [0.5, 1.0, -0.5, 2.0, 4.0, 2.0, -0.5, 1.0, 0.5];
        let mut inputs = HashMap::new();
        for (k, w) in weights.iter().enumerate() {
            inputs.insert(format!("w{k}"), *w);
        }
        for (r, row) in grid.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                inputs.insert(format!("g{r}_{c}"), *v);
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = stencil2d_reference(&grid, &weights);
        for r in 1..rows - 1 {
            for c in 1..cols - 1 {
                assert!(
                    (out[&format!("o{r}_{c}")] - expected[r][c]).abs() < 1e-9,
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn stencil3d_matches_reference() {
        let (nx, ny, nz) = (4, 4, 4);
        let g = build_3d(nx, ny, nz);
        let lattice: Vec<Vec<Vec<f64>>> = (0..nx)
            .map(|x| {
                (0..ny)
                    .map(|y| {
                        (0..nz)
                            .map(|z| ((x * 7 + y * 3 + z) % 11) as f64 - 5.0)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut weights = [0.0; 27];
        for (k, w) in weights.iter_mut().enumerate() {
            *w = (k as f64 - 13.0) * 0.25;
        }
        let mut inputs = HashMap::new();
        for (k, w) in weights.iter().enumerate() {
            inputs.insert(format!("w{k}"), *w);
        }
        for (x, plane) in lattice.iter().enumerate() {
            for (y, row) in plane.iter().enumerate() {
                for (z, v) in row.iter().enumerate() {
                    inputs.insert(format!("g{x}_{y}_{z}"), *v);
                }
            }
        }
        let out = g.evaluate(&inputs).unwrap();
        let expected = stencil3d_reference(&lattice, &weights);
        for x in 1..nx - 1 {
            for y in 1..ny - 1 {
                for z in 1..nz - 1 {
                    assert!(
                        (out[&format!("o{x}_{y}_{z}")] - expected[x][y][z]).abs() < 1e-9,
                        "mismatch at ({x},{y},{z})"
                    );
                }
            }
        }
    }

    #[test]
    fn stencil_parallelism_structure() {
        // Interior points filter independently: the widest stage carries
        // one multiply per (point, weight) pair.
        let s = build_3d(4, 4, 4).stats();
        assert_eq!(s.outputs, 8); // 2x2x2 interior
        assert_eq!(s.max_stage_width, 8 * 27); // all muls concurrent
    }

    #[test]
    #[should_panic(expected = "interior")]
    fn degenerate_grid_panics() {
        let _ = build_2d(2, 5);
    }
}
