//! The JSON wire messages of the work tier.
//!
//! Three POST routes, served by `accelwall serve`'s router when a
//! coordinator is active and spoken by [`run_worker`](crate::run_worker):
//!
//! | Route | Request | Reply |
//! |---|---|---|
//! | [`LEASE_PATH`] | `{"worker","max"}` | [`LeaseReply`] |
//! | [`COMPLETE_PATH`] | [`CompleteRequest`] | [`CompleteReply`] |
//! | [`HEARTBEAT_PATH`] | [`HeartbeatRequest`] | [`HeartbeatReply`] |
//!
//! Every message is a small JSON object built from and parsed back into
//! the typed structs here, so the coordinator and the worker cannot
//! drift on field names. Durations cross the wire as integer
//! milliseconds.

use std::time::Duration;

use accelerator_wall::json::Value;

use crate::WorkError;

/// Route a worker POSTs to ask for a batch of units.
pub const LEASE_PATH: &str = "/work/lease";

/// Route a worker POSTs a finished (or failed) unit to.
pub const COMPLETE_PATH: &str = "/work/complete";

/// Route a worker POSTs liveness to while holding leases.
pub const HEARTBEAT_PATH: &str = "/work/heartbeat";

/// Builds the lease request body.
pub fn lease_request(worker: &str, max: usize) -> Value {
    Value::object([("worker", Value::from(worker)), ("max", Value::from(max))])
}

/// Parses a lease request; returns `(worker, max)`.
///
/// # Errors
///
/// [`WorkError::Protocol`] when a field is missing or mistyped.
pub fn parse_lease_request(body: &Value) -> Result<(String, usize), WorkError> {
    let worker = field_str(body, "worker", "lease request")?;
    let max = field_usize(body, "max", "lease request")?;
    Ok((worker, max))
}

/// What a lease request comes back with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    /// A batch of unit indices, leased until `ttl` from now.
    Units {
        /// The grid the units index into.
        grid: String,
        /// The sweep-space marker (`"coarse"` or `"table3"`) the worker
        /// must build its `Ctx` with — anything else and unit results
        /// would not be byte-identical to the coordinator's fold.
        space: String,
        /// How long the lease lasts without a heartbeat.
        ttl: Duration,
        /// The leased unit indices.
        units: Vec<usize>,
    },
    /// Nothing leasable right now (everything outstanding elsewhere, or
    /// the asking worker is quarantined); ask again after `retry`.
    Wait {
        /// How long to sit out before the next lease request.
        retry: Duration,
    },
    /// Every unit is done; the worker should exit.
    Done,
}

impl LeaseReply {
    /// Renders the reply body.
    pub fn to_value(&self) -> Value {
        match self {
            LeaseReply::Units {
                grid,
                space,
                ttl,
                units,
            } => Value::object([
                ("status", Value::from("units")),
                ("grid", Value::from(grid.as_str())),
                ("space", Value::from(space.as_str())),
                ("ttl_ms", Value::from(ttl.as_millis() as u64)),
                ("units", Value::array(units.iter().map(|&u| Value::from(u)))),
            ]),
            LeaseReply::Wait { retry } => Value::object([
                ("status", Value::from("wait")),
                ("retry_ms", Value::from(retry.as_millis() as u64)),
            ]),
            LeaseReply::Done => Value::object([("status", Value::from("done"))]),
        }
    }

    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// [`WorkError::Protocol`] on an unknown status or missing field.
    pub fn parse(body: &Value) -> Result<LeaseReply, WorkError> {
        match body.get("status").and_then(Value::as_str) {
            Some("units") => Ok(LeaseReply::Units {
                grid: field_str(body, "grid", "lease reply")?,
                space: field_str(body, "space", "lease reply")?,
                ttl: Duration::from_millis(field_u64(body, "ttl_ms", "lease reply")?),
                units: field_indices(body, "units", "lease reply")?,
            }),
            Some("wait") => Ok(LeaseReply::Wait {
                retry: Duration::from_millis(field_u64(body, "retry_ms", "lease reply")?),
            }),
            Some("done") => Ok(LeaseReply::Done),
            other => Err(WorkError::Protocol {
                what: format!("lease reply has status {other:?}"),
            }),
        }
    }
}

/// A worker reporting one unit's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CompleteRequest {
    /// The reporting worker.
    pub worker: String,
    /// The unit index the outcome is for.
    pub unit: usize,
    /// The unit's JSON result, or the error message it failed with.
    pub outcome: Result<Value, String>,
}

impl CompleteRequest {
    /// Renders the request body.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("worker", Value::from(self.worker.as_str())),
            ("unit", Value::from(self.unit)),
        ];
        match &self.outcome {
            Ok(result) => pairs.push(("result", result.clone())),
            Err(error) => pairs.push(("error", Value::from(error.as_str()))),
        }
        Value::object(pairs)
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// [`WorkError::Protocol`] when neither `result` nor `error` is
    /// present, or a field is mistyped.
    pub fn parse(body: &Value) -> Result<CompleteRequest, WorkError> {
        let worker = field_str(body, "worker", "complete request")?;
        let unit = field_usize(body, "unit", "complete request")?;
        let outcome = if let Some(result) = body.get("result") {
            Ok(result.clone())
        } else if let Some(error) = body.get("error").and_then(Value::as_str) {
            Err(error.to_string())
        } else {
            return Err(WorkError::Protocol {
                what: "complete request carries neither \"result\" nor \"error\"".into(),
            });
        };
        Ok(CompleteRequest {
            worker,
            unit,
            outcome,
        })
    }
}

/// The coordinator's answer to a completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteReply {
    /// Whether the outcome was recorded (false only for out-of-range
    /// units).
    pub accepted: bool,
    /// Whether another worker already completed this unit (hedging or
    /// re-issue race; the result was discarded, which is fine — units
    /// are idempotent).
    pub duplicate: bool,
    /// Whether every unit of the grid is now done.
    pub done: bool,
}

impl CompleteReply {
    /// Renders the reply body.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("accepted", Value::from(self.accepted)),
            ("duplicate", Value::from(self.duplicate)),
            ("done", Value::from(self.done)),
        ])
    }

    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// [`WorkError::Protocol`] on missing fields.
    pub fn parse(body: &Value) -> Result<CompleteReply, WorkError> {
        Ok(CompleteReply {
            accepted: field_bool(body, "accepted", "complete reply")?,
            duplicate: field_bool(body, "duplicate", "complete reply")?,
            done: field_bool(body, "done", "complete reply")?,
        })
    }
}

/// A worker's liveness ping, listing the units it still holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatRequest {
    /// The pinging worker.
    pub worker: String,
    /// Unit indices the worker believes it holds.
    pub units: Vec<usize>,
}

impl HeartbeatRequest {
    /// Renders the request body.
    pub fn to_value(&self) -> Value {
        Value::object([
            ("worker", Value::from(self.worker.as_str())),
            (
                "units",
                Value::array(self.units.iter().map(|&u| Value::from(u))),
            ),
        ])
    }

    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// [`WorkError::Protocol`] on missing fields.
    pub fn parse(body: &Value) -> Result<HeartbeatRequest, WorkError> {
        Ok(HeartbeatRequest {
            worker: field_str(body, "worker", "heartbeat request")?,
            units: field_indices(body, "units", "heartbeat request")?,
        })
    }
}

/// The coordinator's answer to a heartbeat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeartbeatReply {
    /// Units the worker should stop computing: already completed
    /// elsewhere, or no longer leased to this worker.
    pub abandon: Vec<usize>,
    /// Whether every unit of the grid is now done.
    pub done: bool,
}

impl HeartbeatReply {
    /// Renders the reply body.
    pub fn to_value(&self) -> Value {
        Value::object([
            (
                "abandon",
                Value::array(self.abandon.iter().map(|&u| Value::from(u))),
            ),
            ("done", Value::from(self.done)),
        ])
    }

    /// Parses a reply body.
    ///
    /// # Errors
    ///
    /// [`WorkError::Protocol`] on missing fields.
    pub fn parse(body: &Value) -> Result<HeartbeatReply, WorkError> {
        Ok(HeartbeatReply {
            abandon: field_indices(body, "abandon", "heartbeat reply")?,
            done: field_bool(body, "done", "heartbeat reply")?,
        })
    }
}

fn missing(message: &str, key: &str) -> WorkError {
    WorkError::Protocol {
        what: format!("{message} is missing field {key:?}"),
    }
}

fn field_str(body: &Value, key: &str, message: &str) -> Result<String, WorkError> {
    body.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| missing(message, key))
}

fn field_u64(body: &Value, key: &str, message: &str) -> Result<u64, WorkError> {
    body.get(key)
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite() && *n >= 0.0)
        .map(|n| n as u64)
        .ok_or_else(|| missing(message, key))
}

fn field_usize(body: &Value, key: &str, message: &str) -> Result<usize, WorkError> {
    field_u64(body, key, message).map(|n| n as usize)
}

fn field_bool(body: &Value, key: &str, message: &str) -> Result<bool, WorkError> {
    body.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| missing(message, key))
}

fn field_indices(body: &Value, key: &str, message: &str) -> Result<Vec<usize>, WorkError> {
    let items = body
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| missing(message, key))?;
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .filter(|n| n.is_finite() && *n >= 0.0)
                .map(|n| n as usize)
                .ok_or_else(|| WorkError::Protocol {
                    what: format!("{message} field {key:?} holds a non-index element"),
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) -> Value {
        Value::parse(&v.pretty()).unwrap()
    }

    #[test]
    fn lease_replies_round_trip() {
        for reply in [
            LeaseReply::Units {
                grid: "sweep".into(),
                space: "coarse".into(),
                ttl: Duration::from_millis(1500),
                units: vec![0, 7, 3],
            },
            LeaseReply::Wait {
                retry: Duration::from_millis(40),
            },
            LeaseReply::Done,
        ] {
            let parsed = LeaseReply::parse(&round_trip(&reply.to_value())).unwrap();
            assert_eq!(parsed, reply);
        }
    }

    #[test]
    fn complete_messages_round_trip_both_outcomes() {
        for outcome in [
            Ok(Value::object([("x", Value::from(1.5))])),
            Err("unit exploded".to_string()),
        ] {
            let req = CompleteRequest {
                worker: "w1".into(),
                unit: 9,
                outcome,
            };
            let parsed = CompleteRequest::parse(&round_trip(&req.to_value())).unwrap();
            assert_eq!(parsed, req);
        }
        let reply = CompleteReply {
            accepted: true,
            duplicate: true,
            done: false,
        };
        assert_eq!(
            CompleteReply::parse(&round_trip(&reply.to_value())).unwrap(),
            reply
        );
    }

    #[test]
    fn heartbeat_messages_round_trip() {
        let req = HeartbeatRequest {
            worker: "w2".into(),
            units: vec![4, 5],
        };
        assert_eq!(
            HeartbeatRequest::parse(&round_trip(&req.to_value())).unwrap(),
            req
        );
        let reply = HeartbeatReply {
            abandon: vec![5],
            done: true,
        };
        assert_eq!(
            HeartbeatReply::parse(&round_trip(&reply.to_value())).unwrap(),
            reply
        );
    }

    #[test]
    fn malformed_messages_name_the_missing_field() {
        let err =
            LeaseReply::parse(&Value::object([("status", Value::from("units"))])).unwrap_err();
        assert!(err.to_string().contains("\"grid\""), "{err}");

        let err = CompleteRequest::parse(&Value::object([
            ("worker", Value::from("w")),
            ("unit", Value::from(1u64)),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("neither"), "{err}");

        let err = LeaseReply::parse(&Value::object([("status", Value::from("nope"))])).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
    }
}
