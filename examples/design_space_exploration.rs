//! Design-space exploration of a 3D-stencil accelerator (the paper's
//! Fig. 13 case study), plus the Fig. 14-style attribution of where the
//! optimal design's gains come from.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use accelerator_wall::accelsim::attribution::Metric;
use accelerator_wall::accelsim::sweep::{best_efficiency, best_performance};
use accelerator_wall::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dfg = Workload::S3d.default_instance();
    let stats = dfg.stats();
    println!(
        "3D stencil instance: {} vertices, {} edges, depth {}, widest stage {}",
        stats.vertices, stats.edges, stats.depth, stats.max_stage_width
    );

    // Sweep the full Table III grid: 20 partition factors x 13
    // simplification degrees x 7 CMOS nodes.
    let space = SweepSpace::table3();
    println!("sweeping {} design points...", space.len());
    let points = run_sweep(&dfg, &space)?;

    // The Fig. 13 runtime-power cloud, summarized per node.
    println!("\nper-node best-energy-efficiency corners:");
    println!(
        "{:>6} {:>12} {:>10} {:>10} {:>6}",
        "node", "runtime", "power", "partition", "simp"
    );
    for &node in TechNode::sweep_nodes() {
        let best = points
            .iter()
            .filter(|p| p.config.node == node)
            .max_by(|a, b| {
                a.report
                    .energy_efficiency()
                    .partial_cmp(&b.report.energy_efficiency())
                    .expect("finite")
            })
            .expect("node swept");
        println!(
            "{:>6} {:>11.2e}s {:>9.3}W {:>10} {:>6}",
            node.to_string(),
            best.report.runtime_s,
            best.report.power_w(),
            best.config.partition_factor,
            best.config.simplification_degree
        );
    }

    let perf = best_performance(&points).expect("non-empty sweep");
    let eff = best_efficiency(&points).expect("non-empty sweep");
    println!(
        "\nbest performance: {:.2e} ops/s at {} (P={}, s={})",
        perf.report.throughput(),
        perf.config.node,
        perf.config.partition_factor,
        perf.config.simplification_degree
    );
    println!(
        "best efficiency:  {:.2e} ops/J at {} (P={}, s={})",
        eff.report.energy_efficiency(),
        eff.config.node,
        eff.config.partition_factor,
        eff.config.simplification_degree
    );

    // Fig. 14: attribute the optimum's gain to its sources.
    for metric in [Metric::Performance, Metric::EnergyEfficiency] {
        let a = attribute_gains(&dfg, metric, &space)?;
        println!(
            "\n{metric:?}: total gain {:.1}x over the unoptimized 45nm baseline (CSR {:.2}x)",
            a.total_gain, a.csr
        );
        for c in &a.contributions {
            println!(
                "  {:<16} {:>7.2}x ({:>5.1}% of log gain)",
                c.source.to_string(),
                c.factor,
                c.percent
            );
        }
    }
    Ok(())
}
