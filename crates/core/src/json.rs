//! A small, dependency-free JSON document model.
//!
//! Experiment artifacts (see [`crate::experiment`]) carry their machine
//! readable form as a [`Value`]. The workspace builds in offline
//! environments where registry crates (including serde) cannot be
//! resolved, so this module implements the subset we need from scratch:
//! an order-preserving document tree, a compact and a pretty serializer,
//! and a strict recursive-descent parser used by the integration tests to
//! validate CLI output.
//!
//! # Example
//!
//! ```
//! use accelerator_wall::json::Value;
//!
//! let doc = Value::object([
//!     ("chip", Value::from("GTX 480")),
//!     ("gain", Value::from(3.5)),
//!     ("released", Value::from(true)),
//! ]);
//! let text = doc.pretty();
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back.get("gain").and_then(Value::as_f64), Some(3.5));
//! ```

use std::fmt;

/// A JSON document: the usual six shapes, with objects preserving
/// insertion order so serialized experiment output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; serialized via Rust's shortest-roundtrip `f64` display.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key/value map (later duplicates win on lookup parse).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array(items: impl IntoIterator<Item = Value>) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// Member lookup on objects; `None` on other shapes or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays.
    pub fn at(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// True for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// True for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => write_seq(out, indent, '[', ']', items.iter(), |v, o, i| {
                v.write(o, i);
            }),
            Value::Object(pairs) => {
                write_seq(out, indent, '{', '}', pairs.iter(), |(k, v), o, i| {
                    write_escaped(o, k);
                    o.push(':');
                    if i.is_some() {
                        o.push(' ');
                    }
                    v.write(o, i);
                });
            }
        }
    }

    /// Parses a strict JSON document (the full input must be one value).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] with a byte offset on malformed input.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Number(f64::from(n))
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::Number(n as f64)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Value {
        o.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> FromIterator<T> for Value {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Value {
        Value::Array(iter.into_iter().map(Into::into).collect())
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write;
    if n.is_finite() {
        // Rust's f64 Display is shortest-roundtrip and never produces
        // exponents JSON cannot read; integral values print bare.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String, Option<usize>),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(item, out, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

/// A JSON parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts. The server feeds this
/// parser untrusted wire bytes, so recursion depth must be bounded well
/// below the thread's stack budget; no experiment artifact comes close.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(self.err("maximum nesting depth exceeded"))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        self.descend()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: at least one digit, no leading zeros.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zeros are not allowed"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Value::object([
            ("name", Value::from("fig3b")),
            ("r_squared", Value::from(0.93)),
            ("count", Value::from(2613usize)),
            (
                "tags",
                Value::array([Value::from("cpu"), Value::from("gpu")]),
            ),
            (
                "nested",
                Value::object([("ok", Value::from(true)), ("none", Value::Null)]),
            ),
        ]);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Value::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn escapes_and_parses_special_strings() {
        let tricky = "quote\" slash\\ newline\n tab\t unicode\u{1F600}\u{7}";
        let v = Value::from(tricky);
        let text = v.to_string();
        assert_eq!(Value::parse(&text).unwrap().as_str(), Some(tricky));
    }

    #[test]
    fn numbers_render_json_compatible() {
        assert_eq!(Value::from(5.0).to_string(), "5");
        assert_eq!(Value::from(-0.25).to_string(), "-0.25");
        assert_eq!(Value::from(f64::NAN).to_string(), "null");
        assert_eq!(Value::parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(Value::parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }

    #[test]
    fn object_lookup_preserves_order_and_finds_keys() {
        let doc = Value::object([("b", Value::from(2.0)), ("a", Value::from(1.0))]);
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(doc.get("a").and_then(Value::as_f64), Some(1.0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "nul"] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_surrogate_pairs() {
        let v = Value::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_escape_sequences() {
        for bad in [
            "\"\\\"",             // escape at end of input
            "\"\\u12\"",          // truncated \u escape
            "\"\\uzzzz\"",        // non-hex \u escape
            "\"\\ud800\"",        // lone high surrogate
            "\"\\ud800\\n\"",     // high surrogate not followed by \u
            "\"\\ud800\\u0041\"", // high surrogate with non-surrogate low
            "\"\\udc00\"",        // lone low surrogate (char::from_u32 fails)
            "\"\\q\"",            // unknown escape letter
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // The whole escape roster parses back to the right characters.
        let v = Value::parse("\"\\\" \\\\ \\/ \\b \\f \\n \\r \\t \\u0041\"").unwrap();
        assert_eq!(v.as_str(), Some("\" \\ / \u{8} \u{c} \n \r \t A"));
    }

    #[test]
    fn rejects_malformed_numbers() {
        for bad in [
            "-", "+1", "01", "-01", "1.", ".5", "1.e3", "1e", "1e+", "1E-", "--1", "0x10", "1..2",
        ] {
            assert!(Value::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Strictness must not reject valid JSON numbers.
        for (good, want) in [
            ("0", 0.0),
            ("-0", -0.0),
            ("0.5", 0.5),
            ("10", 10.0),
            ("1e0", 1.0),
            ("2E+3", 2000.0),
            ("-1.25e-2", -0.0125),
        ] {
            assert_eq!(Value::parse(good).unwrap().as_f64(), Some(want), "{good}");
        }
    }

    #[test]
    fn bounds_container_nesting_depth() {
        // At the limit: parses fine.
        let ok = format!("{}{}", "[".repeat(128), "]".repeat(128));
        assert!(Value::parse(&ok).is_ok());
        // One past the limit: a clean error, not a stack overflow.
        let deep = format!("{}{}", "[".repeat(129), "]".repeat(129));
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting depth"));
        // A hostile megabyte of opens also fails fast.
        let hostile = "[".repeat(1 << 20);
        assert!(Value::parse(&hostile).is_err());
        // Objects count toward the same budget.
        let objs = format!("{}1{}", "{\"k\":[".repeat(80), "]}".repeat(80));
        assert!(Value::parse(&objs).is_err(), "160 levels must exceed 128");
    }
}
