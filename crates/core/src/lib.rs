//! # accelerator-wall
//!
//! A from-scratch Rust reproduction of **"The Accelerator Wall: Limits of
//! Chip Specialization"** (Fuchs & Wentzlaff, HPCA 2019).
//!
//! The paper asks: once CMOS scaling ends and transistor budgets freeze,
//! how much further can chip *specialization* carry accelerator gains?
//! Answering that takes a full analysis stack, all of which lives in this
//! workspace and is re-exported here:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`stats`] | regression / Pareto machinery (Eqs. 5–6 fits) |
//! | [`cmos`] | device-scaling model (Fig. 3a) |
//! | [`chipdb`] | datasheet corpus + transistor-budget fits (Figs. 3b–3c) |
//! | [`potential`] | the CMOS potential model (Fig. 3d) |
//! | [`csr`] | Chip Specialization Return (Eqs. 1–4) |
//! | [`dfg`] | dataflow-graph formalism + Table II limits |
//! | [`workloads`] | the 16 Table IV benchmark DFGs |
//! | [`accelsim`] | pre-RTL design-space simulator (Figs. 13–14) |
//! | [`studies`] | the four empirical case studies (Figs. 1, 4–9) |
//! | [`projection`] | the accelerator wall itself (Figs. 15–16) |
//!
//! On top of the analysis stack sits the **reproduction pipeline** — the
//! machinery that turns those layers into the paper's figures and tables:
//!
//! | Module | Role |
//! |---|---|
//! | [`error`] | one workspace-wide [`error::Error`] every layer converts into |
//! | [`experiment`] | the [`experiment::Experiment`] trait + [`experiment::Artifact`] output |
//! | [`cache`] | [`cache::Ctx`] — memoizes corpus, fits, and sweeps once per process |
//! | [`artifacts`] | [`artifacts::ArtifactCache`] — memoizes experiment outputs for long-lived processes |
//! | [`registry`] | all paper targets, dependency-ordered parallel execution |
//! | [`grids`] | shardable work grids for the distributed work tier |
//! | [`experiments`] | the per-layer experiment implementations |
//! | [`json`] | a small dependency-free JSON value + parser for `--json` output |
//! | [`report`] | per-domain verdict synthesis (the `report` target) |
//!
//! # Quickstart
//!
//! ```
//! use accelerator_wall::prelude::*;
//!
//! // How far can Bitcoin-mining ASICs still go after 5 nm?
//! let wall = accelerator_wall(Domain::BitcoinMining, TargetMetric::Performance)?;
//! println!(
//!     "headroom: {:.1}x (linear) / {:.1}x (log)",
//!     wall.further_linear, wall.further_log
//! );
//! assert!(wall.further_linear < 25.0);
//!
//! // Decompose a design-space optimum into its gain sources (Fig. 14).
//! let dfg = Workload::S3d.default_instance();
//! let attribution = attribute_gains(
//!     &dfg,
//!     Metric::EnergyEfficiency,
//!     &SweepSpace::coarse(),
//! )?;
//! assert!(attribution.csr < attribution.total_gain);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifacts;
pub mod cache;
pub mod error;
pub mod experiment;
pub mod experiments;
pub mod grids;
pub mod json;
pub mod registry;
pub mod report;

pub use accelwall_accelsim as accelsim;
pub use accelwall_chipdb as chipdb;
pub use accelwall_cmos as cmos;
pub use accelwall_csr as csr;
pub use accelwall_dfg as dfg;
pub use accelwall_potential as potential;
pub use accelwall_projection as projection;
pub use accelwall_stats as stats;
pub use accelwall_studies as studies;
pub use accelwall_workloads as workloads;

/// The working set of names most analyses need.
pub mod prelude {
    pub use crate::artifacts::{ArtifactCache, CacheStats};
    pub use crate::cache::Ctx;
    pub use crate::error::{Error, ResultExt};
    pub use crate::experiment::{Artifact, Experiment};
    pub use crate::grids::{run_local, Grid, GridRegistry};
    pub use crate::registry::Registry;
    pub use crate::report::{DomainReport, Maturity};
    pub use accelwall_accelsim::attribution::Metric;
    pub use accelwall_accelsim::{
        attribute_gains, attribute_gains_lowered, attribute_gains_with_points, run_sweep,
        run_sweep_lowered, schedule, schedule_lowered, simulate, simulate_lowered,
        simulate_scheduled, Attribution, DesignConfig, Schedule, SimReport, SweepSpace,
    };
    pub use accelwall_chipdb::{ChipKind, ChipRecord, CorpusSpec, NodeGroup};
    pub use accelwall_cmos::{ScalingMetric, TechNode};
    pub use accelwall_csr::{csr, decompose, ArchObservations, CsrSeries, RelationMatrix};
    pub use accelwall_dfg::{
        concept_limit, Component, Dfg, DfgBuilder, Op, Program, SpecializationConcept,
    };
    pub use accelwall_potential::{fig3d_grid, ChipSpec, PotentialModel, TdpZone};
    pub use accelwall_projection::{
        accelerator_wall, beyond_wall, BeyondWall, Domain, TargetMetric, WallProjection,
    };
    pub use accelwall_workloads::{InstanceSize, Workload};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_wires_the_whole_stack() {
        // One end-to-end pass touching every layer through the facade.
        let model = PotentialModel::paper();
        let baseline = PotentialModel::reference_spec();
        let spec = ChipSpec::new(TechNode::N7, 100.0, 1.2, 150.0);
        let physical = model.throughput_gain(&spec, &baseline);
        assert!(physical > 1.0);
        let d = decompose(2.0 * physical, physical, 1.0).unwrap();
        assert!((d.specialization - 2.0).abs() < 1e-9);

        let dfg = Workload::Trd.default_instance();
        let report = simulate(&dfg, &DesignConfig::baseline()).unwrap();
        assert!(report.runtime_s > 0.0);

        let wall = accelerator_wall(Domain::GpuGraphics, TargetMetric::Performance).unwrap();
        assert!(wall.further_linear >= 1.0);
    }
}
