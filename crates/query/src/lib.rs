//! Parameterized what-if queries over the accelerator-wall pipeline.
//!
//! The experiment registry answers exactly the paper's precomputed
//! targets; this crate answers *arbitrary* accelerator-wall questions —
//! any (workload, Table III knob vector, CMOS node) combination plus
//! CSR and wall-projection what-ifs — at interactive cost, because the
//! bytecode VM made a single design point cheap enough to price on
//! demand.
//!
//! The pipeline has four stages:
//!
//! 1. **Spec** ([`QuerySpec`]) — a typed record parsed from CLI flags, a
//!    URL query string, or a JSON body. Unknown fields are rejected with
//!    the full roster, the same discipline the CLI applies to flags.
//! 2. **Canonicalization** ([`canonical_string`] / [`cache_key`]) —
//!    defaults are filled in, fields are emitted in one fixed order, and
//!    floats print via Rust's shortest-roundtrip display, so `8` and
//!    `8.0` produce the same stable `u64` FNV-1a key.
//! 3. **Cache** ([`QueryCache`]) — a sharded, byte-capped LRU over
//!    pre-serialized JSON response bodies, sitting beside (not
//!    replacing) the per-experiment `ArtifactCache`.
//! 4. **Executor** ([`QueryEngine`]) — admission control sheds work when
//!    estimated cost times in-flight load exceeds the budget, then
//!    answers misses through `Ctx`'s memoized lowered programs, the
//!    sweep runner, and the projection/CSR machinery.
//!
//! A spec that exactly shadows a registry target (today: a full `s3d`
//! sweep shadows `fig13`) is delegated to the `ArtifactCache`, so its
//! response body is byte-identical to `GET /experiments/fig13`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;

pub mod canon;
pub mod engine;
pub mod lru;
pub mod spec;

pub use canon::{cache_key, canonical_string};
pub use engine::{QueryEngine, QueryStats};
pub use lru::{QueryCache, QueryCacheStats};
pub use spec::{QueryKind, QuerySpec};

/// Why a query could not be answered.
#[derive(Debug)]
pub enum QueryError {
    /// The spec failed validation: unknown or duplicate field, a value
    /// outside its roster or range, or a field that does not apply to
    /// the requested kind. Maps to a client error.
    Invalid(String),
    /// Admission control shed the query: estimated cost on top of the
    /// in-flight load would exceed the engine's budget. Retryable.
    Overloaded {
        /// Cost units the rejected query would have added.
        cost: u64,
        /// Cost units already in flight.
        in_flight: u64,
        /// The engine's cost budget.
        budget: u64,
    },
    /// The pipeline itself failed while computing the answer.
    Engine(accelerator_wall::error::Error),
}

impl QueryError {
    /// True when retrying the same query later may succeed: shed load
    /// and injected transient faults, not validation failures.
    pub fn is_retryable(&self) -> bool {
        use accelerator_wall::error::Error;
        match self {
            QueryError::Overloaded { .. } => true,
            QueryError::Engine(e) => matches!(
                e.root_cause(),
                Error::FaultInjected { .. } | Error::ComputeTimeout { .. }
            ),
            QueryError::Invalid(_) => false,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Invalid(msg) => write!(f, "invalid query: {msg}"),
            QueryError::Overloaded {
                cost,
                in_flight,
                budget,
            } => write!(
                f,
                "query shed by admission control: cost {cost} on top of \
                 {in_flight} in-flight units exceeds the budget of {budget}"
            ),
            QueryError::Engine(e) => write!(f, "query execution failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<accelerator_wall::error::Error> for QueryError {
    fn from(e: accelerator_wall::error::Error) -> Self {
        QueryError::Engine(e)
    }
}
