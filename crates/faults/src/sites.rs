//! The static injection-site roster.
//!
//! A fault plan names the *site* where each fault fires. Two families of
//! site names exist:
//!
//! * **Static sites** — fixed probe points compiled into the stack,
//!   listed in [`ROSTER`] below. The `fault-sites` rule of
//!   `accelwall lint` cross-checks this roster against the actual
//!   `probe("...")` call sites in the workspace (both directions), the
//!   same way `registry-sync` keeps `Registry::paper()` honest.
//! * **Dynamic sites** — one per experiment target: the artifact cache
//!   probes with the experiment's own id (`fig3b`, `table5`, ...) before
//!   every compute attempt, so a plan like `fig3b:err:2` targets exactly
//!   one artifact. Dynamic names are validated at arm time against the
//!   live registry roster, not by the lint.

/// One fixed probe point in the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// The name a fault-plan entry uses to target this probe.
    pub name: &'static str,
    /// Where the probe lives, for humans chasing a firing site.
    pub location: &'static str,
    /// What a fault fired here simulates.
    pub effect: &'static str,
}

/// `accelwall serve` probes this once per parsed request, at the top of
/// the pool's compute handler: a `panic` here dies *on the pool worker
/// thread* (exercising worker respawn — the reactor closes the client's
/// connection), an `err` answers the request with a 500, and a `hang`
/// occupies the worker for the configured duration.
pub const SERVE_REQUEST: &str = "serve-request";

/// The connection reactor probes this once per accepted connection,
/// before registering it: an `err` here sheds the connection with an
/// immediate `503` + close (the same shape as the concurrent-connection
/// cap firing), and a `panic` is contained by the reactor — the
/// connection is dropped, the event loop survives.
pub const SERVE_CONN: &str = "serve-conn";

/// The query engine probes this at admission, before reserving cost
/// units: an `err` here sheds the query (503 on the wire) exactly as a
/// saturated budget would, without touching the LRU.
pub const QUERY_CACHE_ADMIT: &str = "query-cache-admit";

/// The query engine probes this after admission, before executing a
/// cache miss: an `err` here fails the compute as a retryable fault.
/// Nothing is inserted on failure, so the LRU is never poisoned.
pub const QUERY_COMPUTE: &str = "query-compute";

/// The work coordinator probes this at the top of every lease grant:
/// an `err` here answers the lease request with a 500, which the worker
/// must absorb with backoff-and-retry instead of dying.
pub const WORK_LEASE: &str = "work-lease";

/// A worker probes this before computing each leased unit: an `err` or
/// `panic` here simulates a unit dying mid-compute — the worker reports
/// the failure and the coordinator must re-issue the unit.
pub const WORK_COMPUTE: &str = "work-compute";

/// The work coordinator probes this when a completion arrives: an `err`
/// here drops the completion on the floor (500 on the wire), which the
/// worker's idempotent re-send must survive.
pub const WORK_COMPLETE: &str = "work-complete";

/// A worker probes this before each heartbeat send: a `hang` here
/// silences the worker past its lease deadline, so the coordinator must
/// expire the lease and re-issue its units to someone else.
pub const WORK_HEARTBEAT: &str = "work-heartbeat";

/// Every static site, in probe order. Dynamic (per-experiment) sites are
/// documented above and validated against the registry at arm time.
pub const ROSTER: &[Site] = &[
    Site {
        name: SERVE_REQUEST,
        location: "crates/server/src/lib.rs::compute_response",
        effect: "a request handler failing on the worker thread itself",
    },
    Site {
        name: SERVE_CONN,
        location: "crates/server/src/reactor.rs::Reactor::accept_burst",
        effect: "connection-level chaos at accept (shed or dropped, reactor survives)",
    },
    Site {
        name: QUERY_CACHE_ADMIT,
        location: "crates/query/src/engine.rs::QueryEngine::admit",
        effect: "admission control shedding a query under load",
    },
    Site {
        name: QUERY_COMPUTE,
        location: "crates/query/src/engine.rs::QueryEngine::answer",
        effect: "a transient failure while computing a query miss",
    },
    Site {
        name: WORK_LEASE,
        location: "crates/work/src/coordinator.rs::Coordinator::lease",
        effect: "the coordinator failing to grant a lease (worker must retry)",
    },
    Site {
        name: WORK_COMPUTE,
        location: "crates/work/src/worker.rs::compute_unit",
        effect: "a worker dying or erroring mid-unit (coordinator re-issues)",
    },
    Site {
        name: WORK_COMPLETE,
        location: "crates/work/src/coordinator.rs::Coordinator::complete",
        effect: "a completion lost on the wire (idempotent re-send recovers)",
    },
    Site {
        name: WORK_HEARTBEAT,
        location: "crates/work/src/worker.rs::WorkerRunner::heartbeat",
        effect: "a silenced worker missing its lease deadline (lease expiry)",
    },
];

/// Whether `name` is one of the static sites in [`ROSTER`].
pub fn is_static(name: &str) -> bool {
    ROSTER.iter().any(|s| s.name == name)
}

/// The static site names, in roster order.
pub fn names() -> impl Iterator<Item = &'static str> {
    ROSTER.iter().map(|s| s.name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_names_are_unique_kebab_and_described() {
        let all: Vec<&str> = names().collect();
        let mut unique = all.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), all.len(), "duplicate site names");
        for site in ROSTER {
            assert!(
                site.name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                site.name
            );
            assert!(!site.location.is_empty());
            assert!(!site.effect.is_empty());
        }
        assert!(is_static(SERVE_REQUEST));
        assert!(!is_static("fig3b"));
    }
}
