//! Beyond the wall: what surviving it would take.
//!
//! The paper closes by arguing that once CMOS stops, "gains will remain
//! solely dependent on improving specialization returns, that empirically
//! scale more modestly." This module quantifies that sentence. For each
//! domain it fits exponential trajectories to the study data —
//!
//! * the historical *end-to-end* gain rate (CMOS × specialization),
//! * the historical *CSR-only* rate (what design skill alone delivered),
//!
//! — and combines them with the projected wall to answer two questions:
//!
//! 1. **Years of runway**: how long does the remaining headroom last if
//!    the domain keeps improving at its historical rate?
//! 2. **The specialization gap**: post-wall, sustaining the historical
//!    trajectory requires CSR to grow at the full historical rate; how
//!    many times faster is that than CSR ever actually grew?

use crate::domains::{Domain, TargetMetric};
use crate::wall::accelerator_wall;
use crate::{ProjectionError, Result};
use accelwall_stats::Linear;
use accelwall_studies::{bitcoin, fpga, gpu, video};

/// The beyond-the-wall summary for one domain and metric.
#[derive(Debug, Clone, PartialEq)]
pub struct BeyondWall {
    /// Domain analyzed.
    pub domain: Domain,
    /// Metric analyzed.
    pub metric: TargetMetric,
    /// Historical compound annual growth rate of the end-to-end gain
    /// (e.g. 0.4 = 40%/year).
    pub historical_cagr: f64,
    /// Historical compound annual growth rate of CSR alone.
    pub csr_cagr: f64,
    /// Years the linear-model headroom lasts at the historical rate.
    pub runway_years_linear: f64,
    /// Years the log-model headroom lasts at the historical rate.
    pub runway_years_log: f64,
    /// How many times faster CSR must grow post-wall to sustain the
    /// historical trajectory (`historical_cagr / max(csr_cagr, ε)`);
    /// `f64::INFINITY` when CSR historically declined.
    pub required_csr_speedup: f64,
}

/// Per-domain `(year, reported gain, physical gain)` observations.
fn trajectory(domain: Domain, metric: TargetMetric) -> Result<Vec<(f64, f64, f64)>> {
    let series = match (domain, metric) {
        (Domain::VideoDecoding, TargetMetric::Performance) => video::performance_series(),
        (Domain::VideoDecoding, TargetMetric::EnergyEfficiency) => video::efficiency_series(),
        (Domain::BitcoinMining, TargetMetric::Performance) => bitcoin::fig1_series(),
        (Domain::BitcoinMining, TargetMetric::EnergyEfficiency) => {
            bitcoin::fig9_efficiency_series()
        }
        (Domain::FpgaCnn, TargetMetric::Performance) => {
            fpga::performance_series(fpga::CnnModel::AlexNet)
        }
        (Domain::FpgaCnn, TargetMetric::EnergyEfficiency) => {
            fpga::efficiency_series(fpga::CnnModel::AlexNet)
        }
        (Domain::GpuGraphics, _) => {
            // GPUs carry explicit years; synthesize the series directly.
            let rows = gpu::gpu_chips()
                .iter()
                .map(|g| {
                    let (reported, physical) = match metric {
                        TargetMetric::Performance => {
                            (gpu::latent_performance_gain(g), g.physical_throughput())
                        }
                        TargetMetric::EnergyEfficiency => {
                            (gpu::latent_efficiency_gain(g), g.physical_efficiency())
                        }
                    };
                    (f64::from(g.year), reported, physical)
                })
                .collect::<Vec<_>>();
            let base_phys = rows[0].2;
            return Ok(rows
                .into_iter()
                .map(|(y, r, p)| (y, r, p / base_phys))
                .collect());
        }
    }
    .map_err(|e| ProjectionError::Study(e.to_string()))?;

    Ok(series
        .rows
        .iter()
        .filter_map(|r| year_of_label(&r.label).map(|y| (y, r.reported_gain, r.physical_gain)))
        .collect())
}

/// Extracts a 4-digit year from a study row label ("ISSCC2013",
/// "BM1387 (Antminer S9)" → uses the miner dataset's intro year instead).
fn year_of_label(label: &str) -> Option<f64> {
    // Venue labels embed the year directly.
    let digits: String = label.chars().filter(char::is_ascii_digit).collect();
    for window in digits.as_bytes().windows(4) {
        let y: u32 = std::str::from_utf8(window).ok()?.parse().ok()?;
        if (1999..=2020).contains(&y) {
            return Some(f64::from(y));
        }
    }
    // Miner labels: look the chip up in the dataset.
    bitcoin::miners()
        .iter()
        .find(|m| label.contains(m.name) || m.name.contains(label))
        .map(|m| f64::from(m.intro.0) + f64::from(m.intro.1 - 1) / 12.0)
}

/// Fits `ln(gain) = rate · year + c` and returns the CAGR `e^rate − 1`.
fn cagr(points: &[(f64, f64)]) -> Result<f64> {
    let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = points.iter().map(|p| p.1.max(1e-12).ln()).collect();
    let fit = Linear::fit(&xs, &ys)?;
    Ok(fit.slope.exp() - 1.0)
}

/// Computes the beyond-the-wall summary for a domain and metric.
///
/// # Errors
///
/// Propagates study, statistics, and projection errors; returns
/// [`ProjectionError::Study`] when a domain has too few dated points.
pub fn beyond_wall(domain: Domain, metric: TargetMetric) -> Result<BeyondWall> {
    let wall = accelerator_wall(domain, metric)?;
    let traj = trajectory(domain, metric)?;
    if traj.len() < 3 {
        return Err(ProjectionError::Study(format!(
            "{domain}: only {} dated observations",
            traj.len()
        )));
    }
    let historical_cagr = cagr(&traj.iter().map(|&(y, r, _)| (y, r)).collect::<Vec<_>>())?;
    let csr_cagr = cagr(&traj.iter().map(|&(y, r, p)| (y, r / p)).collect::<Vec<_>>())?;
    let growth = (1.0 + historical_cagr).max(1.0 + 1e-9).ln();
    let runway = |headroom: f64| headroom.max(1.0).ln() / growth;
    let required_csr_speedup = if csr_cagr > 1e-6 {
        historical_cagr / csr_cagr
    } else {
        f64::INFINITY
    };
    Ok(BeyondWall {
        domain,
        metric,
        historical_cagr,
        csr_cagr,
        runway_years_linear: runway(wall.further_linear),
        runway_years_log: runway(wall.further_log),
        required_csr_speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_have_runway_estimates() {
        for &d in Domain::all() {
            let b = beyond_wall(d, TargetMetric::Performance).unwrap();
            assert!(b.historical_cagr > 0.0, "{d}: gains grew historically");
            assert!(b.runway_years_linear >= b.runway_years_log, "{d}");
            assert!(b.runway_years_linear.is_finite());
        }
    }

    #[test]
    fn historical_gains_outpaced_csr_everywhere() {
        // The paper's core claim, as a growth-rate inequality.
        for &d in Domain::all() {
            let b = beyond_wall(d, TargetMetric::Performance).unwrap();
            assert!(
                b.historical_cagr > b.csr_cagr,
                "{d}: total {:.2}/yr vs CSR {:.2}/yr",
                b.historical_cagr,
                b.csr_cagr
            );
            assert!(b.required_csr_speedup > 1.5, "{d}");
        }
    }

    #[test]
    fn bitcoin_raced_fastest_and_hits_the_wall_soonest() {
        let btc = beyond_wall(Domain::BitcoinMining, TargetMetric::Performance).unwrap();
        let video = beyond_wall(Domain::VideoDecoding, TargetMetric::Performance).unwrap();
        assert!(
            btc.historical_cagr > video.historical_cagr,
            "mining grew faster: {:.1}/yr vs {:.1}/yr",
            btc.historical_cagr,
            video.historical_cagr
        );
        assert!(
            btc.runway_years_linear < video.runway_years_linear,
            "and therefore has less runway"
        );
    }

    #[test]
    fn runway_is_about_a_node_cycle_or_two() {
        // The wall in years: every domain's remaining headroom amounts to
        // at most a few process-node cycles of business-as-usual, even
        // under the optimistic linear model — and often far less.
        for &d in Domain::all() {
            for m in [TargetMetric::Performance, TargetMetric::EnergyEfficiency] {
                let b = beyond_wall(d, m).unwrap();
                assert!(
                    b.runway_years_linear < 20.0,
                    "{d} {m:?}: runway {:.1} years",
                    b.runway_years_linear
                );
                assert!(
                    b.runway_years_log < 6.0,
                    "{d} {m:?}: log runway {:.1} years",
                    b.runway_years_log
                );
            }
        }
    }

    #[test]
    fn year_extraction_from_labels() {
        assert_eq!(year_of_label("ISSCC2013"), Some(2013.0));
        assert_eq!(year_of_label("FPGA2017*"), Some(2017.0));
        assert!(year_of_label("BM1387 (Antminer S9)").is_some());
        assert_eq!(year_of_label("no year here"), None);
    }
}
