//! The worker runner: the `accelwall work --join URL` client.
//!
//! A worker is the same binary as the coordinator pointed at a
//! coordinator's HTTP address. It loops lease → heartbeat → compute →
//! complete until the coordinator answers `done`, building its `Ctx`
//! once from the lease's sweep-space marker so every unit it computes
//! is byte-identical to what a local run would have produced.
//!
//! The HTTP client keeps **one keep-alive connection** to the
//! coordinator and reuses it for every POST (lease, heartbeat,
//! complete), reading each answer by its `Content-Length` frame instead
//! of half-closing and waiting for EOF — against the server's
//! connection reactor a whole worker lifetime costs one connection, not
//! one per request. A pooled connection that has died in the meantime
//! (idle timeout, coordinator restart) is replaced by exactly one fresh
//! dial before the failure is surfaced, and a reply carrying
//! `Connection: close` retires the connection after the body.
//!
//! Transport robustness mirrors the coordinator's: every POST retries
//! with capped decorrelated-jitter backoff, 5xx answers (load shedding,
//! injected `work-lease` faults) count as transient, and once the
//! worker has successfully spoken to the coordinator, a permanently
//! unreachable coordinator is treated as "run finished, coordinator
//! exited" rather than an error — workers must outlive their
//! coordinator gracefully.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use accelerator_wall::cache::Ctx;
use accelerator_wall::grids::{Grid, GridRegistry};
use accelerator_wall::json::Value;
use accelerator_wall::prelude::SweepSpace;
use accelwall_stats::rng::{decorrelated_backoff, Rng};

use crate::protocol::{
    lease_request, CompleteReply, CompleteRequest, HeartbeatReply, HeartbeatRequest, LeaseReply,
    COMPLETE_PATH, HEARTBEAT_PATH, LEASE_PATH,
};
use crate::WorkError;

/// Tuning knobs for one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The coordinator's address (`host:port`, an `http://` prefix is
    /// tolerated).
    pub coordinator: String,
    /// The name this worker leases under; must be unique in the fleet.
    pub name: String,
    /// Units asked for per lease request.
    pub batch: usize,
    /// Read/write timeout on each coordinator connection.
    pub io_timeout: Duration,
    /// Base of the transport retry backoff.
    pub backoff_base: Duration,
    /// Cap of the transport retry backoff.
    pub backoff_cap: Duration,
    /// Consecutive transport failures tolerated before giving up on the
    /// coordinator.
    pub max_transport_failures: u32,
}

impl WorkerConfig {
    /// A default-tuned worker pointed at `coordinator`, named after the
    /// process id.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            batch: 2,
            io_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            max_transport_failures: 5,
        }
    }
}

/// What one worker did over its lifetime, printed by the CLI on exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Units leased to this worker.
    pub leased: u64,
    /// Units computed and completed successfully.
    pub computed: u64,
    /// Units whose compute failed (reported to the coordinator).
    pub failed: u64,
    /// Units abandoned because a heartbeat said they were done or
    /// re-issued elsewhere.
    pub abandoned: u64,
}

/// Runs one worker against `config.coordinator` until the coordinator
/// reports the run done (or goes away after having been reachable).
///
/// # Errors
///
/// [`WorkError::Transport`] when the coordinator was never reachable,
/// [`WorkError::Protocol`] on malformed replies, [`WorkError::Grid`]
/// when the leased grid or space is unknown to this build.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerReport, WorkError> {
    WorkerRunner::new(config.clone()).drive()
}

/// Computes one leased unit. Probes the `work-compute` fault site
/// first: an `err` fault becomes a reported unit failure, and a `panic`
/// fault kills the worker mid-batch — exactly the crash the
/// coordinator's lease expiry must absorb — so the probe's panic is
/// deliberately left uncontained.
fn compute_unit(grid: &Arc<dyn Grid>, ctx: &Arc<Ctx>, unit: usize) -> Result<Value, String> {
    accelwall_faults::probe(accelwall_faults::sites::WORK_COMPUTE).map_err(|e| e.to_string())?;
    grid.compute(ctx, unit).map_err(|e| e.to_string())
}

/// The state one worker loop carries: transport health, the cached
/// grid + `Ctx`, and the lifetime report.
struct WorkerRunner {
    config: WorkerConfig,
    /// Normalized `host:port` the HTTP client dials.
    addr: String,
    /// Whether any request has ever succeeded; gates the "coordinator
    /// exited" interpretation of an unreachable peer.
    connected: bool,
    /// Jitter stream for transport backoff. Seeded from the process
    /// id, not the clock.
    jitter: Rng,
    /// `(grid id, space)` the cached pair below was built for.
    cached_for: Option<(String, String)>,
    grid: Option<Arc<dyn Grid>>,
    ctx: Option<Arc<Ctx>>,
    report: WorkerReport,
    /// The pooled keep-alive connection to the coordinator; `None`
    /// until the first POST dials, or after an error/`Connection:
    /// close` retires it.
    conn: Option<TcpStream>,
}

impl WorkerRunner {
    fn new(config: WorkerConfig) -> WorkerRunner {
        let addr = normalize_addr(&config.coordinator);
        WorkerRunner {
            addr,
            connected: false,
            jitter: Rng::seed(
                u64::from(std::process::id()).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            ),
            cached_for: None,
            grid: None,
            ctx: None,
            report: WorkerReport::default(),
            conn: None,
            config,
        }
    }

    fn drive(mut self) -> Result<WorkerReport, WorkError> {
        loop {
            let ask = lease_request(&self.config.name, self.config.batch.max(1));
            let Some(reply) = self.post_with_retry(LEASE_PATH, &ask)? else {
                break; // coordinator exited after we had spoken to it
            };
            match LeaseReply::parse(&reply)? {
                LeaseReply::Done => break,
                LeaseReply::Wait { retry } => {
                    std::thread::sleep(
                        retry.clamp(Duration::from_millis(5), Duration::from_secs(2)),
                    );
                }
                LeaseReply::Units {
                    grid,
                    space,
                    ttl: _,
                    units,
                } => {
                    self.ensure_context(&grid, &space)?;
                    self.report.leased += units.len() as u64;
                    if self.work_batch(units)? {
                        break;
                    }
                }
            }
        }
        Ok(self.report)
    }

    /// Builds (or reuses) the grid + `Ctx` pair the lease names. The
    /// space marker must match the coordinator's, or unit results would
    /// not fold byte-identically.
    fn ensure_context(&mut self, grid: &str, space: &str) -> Result<(), WorkError> {
        if self
            .cached_for
            .as_ref()
            .is_some_and(|(g, s)| g == grid && s == space)
        {
            return Ok(());
        }
        let resolved = GridRegistry::standard().get(grid)?;
        let ctx = match space {
            "coarse" => Ctx::with_space(SweepSpace::coarse()),
            "table3" => Ctx::new(),
            other => {
                return Err(WorkError::Protocol {
                    what: format!("lease names unknown sweep space {other:?}"),
                })
            }
        };
        self.cached_for = Some((grid.to_string(), space.to_string()));
        self.grid = Some(resolved);
        self.ctx = Some(Arc::new(ctx));
        Ok(())
    }

    /// Heartbeats, computes, and completes one leased batch. Returns
    /// `true` when the coordinator reported the whole run done.
    fn work_batch(&mut self, units: Vec<usize>) -> Result<bool, WorkError> {
        let (Some(grid), Some(ctx)) = (self.grid.clone(), self.ctx.clone()) else {
            return Err(WorkError::Protocol {
                what: "batch granted before any grid context".into(),
            });
        };
        let mut remaining = units;
        while !remaining.is_empty() {
            let beat = self.heartbeat(&remaining)?;
            if beat.done {
                self.report.abandoned += remaining.len() as u64;
                return Ok(true);
            }
            if !beat.abandon.is_empty() {
                let before = remaining.len();
                remaining.retain(|u| !beat.abandon.contains(u));
                self.report.abandoned += (before - remaining.len()) as u64;
            }
            let Some(&unit) = remaining.first() else {
                break;
            };
            let outcome = compute_unit(&grid, &ctx, unit);
            match &outcome {
                Ok(_) => self.report.computed += 1,
                Err(_) => self.report.failed += 1,
            }
            let request = CompleteRequest {
                worker: self.config.name.clone(),
                unit,
                outcome,
            };
            let Some(reply) = self.post_with_retry(COMPLETE_PATH, &request.to_value())? else {
                return Ok(true); // coordinator exited; nothing left to report to
            };
            let reply = CompleteReply::parse(&reply)?;
            remaining.retain(|u| *u != unit);
            if reply.done {
                self.report.abandoned += remaining.len() as u64;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Sends one liveness ping for the units still held. Probes the
    /// `work-heartbeat` fault site first: a `hang` here silences the
    /// worker past its lease deadline (the coordinator must expire and
    /// re-issue), and an `err` models a ping lost on the wire — the
    /// beat is skipped, not fatal. Transport failures are likewise
    /// best-effort: the next lease or complete will surface them.
    fn heartbeat(&mut self, units: &[usize]) -> Result<HeartbeatReply, WorkError> {
        let silent = HeartbeatReply {
            abandon: Vec::new(),
            done: false,
        };
        if accelwall_faults::probe(accelwall_faults::sites::WORK_HEARTBEAT).is_err() {
            return Ok(silent);
        }
        let request = HeartbeatRequest {
            worker: self.config.name.clone(),
            units: units.to_vec(),
        };
        match self.post(HEARTBEAT_PATH, &request.to_value()) {
            Ok((200, body)) => HeartbeatReply::parse(&parse_json(HEARTBEAT_PATH, &body)?),
            Ok(_) | Err(_) => Ok(silent),
        }
    }

    /// POSTs `body`, retrying transport failures and 5xx answers with
    /// capped decorrelated-jitter backoff. `Ok(None)` means the
    /// coordinator has gone away after previously being reachable —
    /// the worker's signal to exit cleanly.
    fn post_with_retry(&mut self, path: &str, body: &Value) -> Result<Option<Value>, WorkError> {
        let mut failures = 0u32;
        let mut backoff = Duration::ZERO;
        loop {
            let soft = match self.post(path, body) {
                Ok((200, text)) => {
                    self.connected = true;
                    return parse_json(path, &text).map(Some);
                }
                Ok((status, _)) if status >= 500 => WorkError::Transport {
                    what: format!("{path} answered transient status {status}"),
                },
                Ok((status, text)) => {
                    return Err(WorkError::Protocol {
                        what: format!("{path} answered {status}: {}", text.trim()),
                    })
                }
                Err(e) => e,
            };
            failures += 1;
            if failures > self.config.max_transport_failures {
                return if self.connected { Ok(None) } else { Err(soft) };
            }
            backoff = decorrelated_backoff(
                &mut self.jitter,
                self.config.backoff_base,
                self.config.backoff_cap,
                backoff,
            );
            std::thread::sleep(backoff);
        }
    }

    /// One `POST path` round trip over the pooled keep-alive
    /// connection. A pooled connection that errors (the coordinator may
    /// have idle-timed it out between batches) is retired and the POST
    /// retried once on a fresh dial before the failure surfaces.
    fn post(&mut self, path: &str, body: &Value) -> Result<(u16, String), WorkError> {
        let payload = body.pretty();
        if self.conn.is_some() {
            match self.post_once(path, &payload) {
                Ok(answer) => return Ok(answer),
                Err(_) => self.conn = None, // stale pooled conn; re-dial
            }
        }
        self.post_once(path, &payload)
    }

    /// Sends one POST on the current connection (dialing if none is
    /// pooled) and reads one `Content-Length`-framed answer. Any error
    /// retires the connection so the next attempt dials fresh.
    fn post_once(&mut self, path: &str, payload: &str) -> Result<(u16, String), WorkError> {
        let transport = |what: String| WorkError::Transport { what };
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| transport(format!("connect {}: {e}", self.addr)))?;
            stream
                .set_read_timeout(Some(self.config.io_timeout))
                .and_then(|()| stream.set_write_timeout(Some(self.config.io_timeout)))
                .and_then(|()| stream.set_nodelay(true))
                .map_err(|e| transport(format!("socket setup: {e}")))?;
            self.conn = Some(stream);
        }
        let Some(stream) = self.conn.as_mut() else {
            return Err(transport("no connection".into()));
        };
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        if let Err(e) = stream.write_all(request.as_bytes()) {
            self.conn = None;
            return Err(transport(format!("send {path}: {e}")));
        }
        match read_framed_response(stream) {
            Ok((status, body, close)) => {
                if close {
                    self.conn = None; // the peer asked; honor it
                }
                Ok((status, body))
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed HTTP response off `stream`,
/// returning `(status, body, close)` where `close` reports whether the
/// peer retired the connection (`Connection: close`, or an HTTP/1.0
/// status line).
fn read_framed_response(stream: &mut TcpStream) -> Result<(u16, String, bool), WorkError> {
    let transport = |what: String| WorkError::Transport { what };
    let violation = |what: String| WorkError::Protocol { what };
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 64 * 1024 {
            return Err(violation("response head exceeds 64 KiB".into()));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| transport(format!("receive: {e}")))?;
        if n == 0 {
            return Err(transport("connection closed mid-response".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| violation("response head is not utf-8".into()))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| violation("response has no parsable status line".into()))?;
    let mut content_length = 0usize;
    let mut close = head.starts_with("HTTP/1.0");
    for line in head.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| violation(format!("bad Content-Length {:?}", value.trim())))?;
        } else if name.eq_ignore_ascii_case("connection")
            && value.trim().eq_ignore_ascii_case("close")
        {
            close = true;
        }
    }
    while buf.len() < head_end + content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| transport(format!("receive body: {e}")))?;
        if n == 0 {
            return Err(transport("connection closed mid-body".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[head_end..head_end + content_length].to_vec())
        .map_err(|_| violation("response body is not utf-8".into()))?;
    Ok((status, body, close))
}

/// Strips an `http://` prefix and trailing slashes off a coordinator
/// address, leaving the `host:port` the socket dials.
fn normalize_addr(coordinator: &str) -> String {
    coordinator
        .trim()
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// Parses a 200 body as JSON, labeling failures with the route.
fn parse_json(path: &str, body: &str) -> Result<Value, WorkError> {
    Value::parse(body).map_err(|e| WorkError::Protocol {
        what: format!("{path} answered unparsable JSON: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn addresses_normalize_to_host_port() {
        assert_eq!(normalize_addr("http://127.0.0.1:8390/"), "127.0.0.1:8390");
        assert_eq!(normalize_addr(" 10.0.0.2:80 "), "10.0.0.2:80");
        assert_eq!(normalize_addr("localhost:1"), "localhost:1");
    }

    #[test]
    fn framed_responses_split_into_status_body_and_persistence() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let serve = |raw: &'static str| {
            let client = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
            let (mut peer, _) = listener.accept().unwrap();
            peer.write_all(raw.as_bytes()).unwrap();
            client.join().unwrap()
        };
        let mut stream = serve(
            "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nshed\n",
        );
        let (status, body, close) = read_framed_response(&mut stream).unwrap();
        assert_eq!((status, body.as_str(), close), (503, "shed\n", false));
        let mut stream =
            serve("HTTP/1.1 200 OK\r\nContent-Length: 3\r\nConnection: close\r\n\r\nok\n");
        let (status, body, close) = read_framed_response(&mut stream).unwrap();
        assert_eq!((status, body.as_str(), close), (200, "ok\n", true));
        let mut stream = serve("garbage\r\n\r\n");
        assert!(read_framed_response(&mut stream).is_err());
    }

    /// A keep-alive fake coordinator: answers `Content-Length`-framed
    /// requests in order on whatever connection the client holds open,
    /// re-accepting if the client re-dials. Returns the requests it saw
    /// and how many connections the client used.
    fn fake_coordinator(
        replies: Vec<String>,
    ) -> (String, std::thread::JoinHandle<(Vec<String>, usize)>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            let mut connections = 0usize;
            let mut pending = replies.into_iter();
            let mut next = pending.next();
            'accepting: while next.is_some() {
                let (mut stream, _) = listener.accept().unwrap();
                connections += 1;
                let mut buf: Vec<u8> = Vec::new();
                let mut chunk = [0u8; 4096];
                while let Some(reply) = next.as_ref() {
                    let (head_end, content_length) = loop {
                        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                            let head = std::str::from_utf8(&buf[..pos]).unwrap();
                            let len = head
                                .lines()
                                .find_map(|line| {
                                    let (name, value) = line.split_once(':')?;
                                    name.eq_ignore_ascii_case("content-length")
                                        .then(|| value.trim().parse::<usize>().ok())?
                                })
                                .unwrap_or(0);
                            break (pos + 4, len);
                        }
                        match stream.read(&mut chunk) {
                            Ok(0) | Err(_) => continue 'accepting, // client re-dials
                            Ok(n) => buf.extend_from_slice(&chunk[..n]),
                        }
                    };
                    while buf.len() < head_end + content_length {
                        let n = stream.read(&mut chunk).unwrap();
                        assert!(n > 0, "client closed mid-body");
                        buf.extend_from_slice(&chunk[..n]);
                    }
                    let request: Vec<u8> = buf.drain(..head_end + content_length).collect();
                    seen.push(String::from_utf8(request).unwrap());
                    let http = format!(
                        "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{reply}",
                        reply.len()
                    );
                    stream.write_all(http.as_bytes()).unwrap();
                    next = pending.next();
                }
            }
            (seen, connections)
        });
        (addr, handle)
    }

    #[test]
    fn a_worker_exits_cleanly_on_done() {
        let (addr, server) = fake_coordinator(vec![LeaseReply::Done.to_value().pretty()]);
        let mut config = WorkerConfig::new(addr);
        config.name = "w-test".into();
        let report = run_worker(&config).unwrap();
        assert_eq!(report, WorkerReport::default());
        let (seen, _) = server.join().unwrap();
        assert!(
            seen[0].starts_with("POST /work/lease HTTP/1.1\r\n"),
            "{}",
            seen[0]
        );
        assert!(seen[0].contains("\"worker\": \"w-test\""), "{}", seen[0]);
    }

    #[test]
    fn sequential_posts_reuse_one_keep_alive_connection() {
        // Two lease round trips (a wait, then done) must ride the same
        // pooled connection — the whole point of the keep-alive client.
        let wait = LeaseReply::Wait {
            retry: Duration::from_millis(5),
        };
        let (addr, server) = fake_coordinator(vec![
            wait.to_value().pretty(),
            LeaseReply::Done.to_value().pretty(),
        ]);
        let report = run_worker(&WorkerConfig::new(addr)).unwrap();
        assert_eq!(report, WorkerReport::default());
        let (seen, connections) = server.join().unwrap();
        assert_eq!(seen.len(), 2);
        assert_eq!(connections, 1, "worker re-dialed instead of reusing");
    }

    #[test]
    fn an_unreachable_coordinator_is_a_transport_error() {
        // Bind-then-drop guarantees a dead port.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let mut config = WorkerConfig::new(format!("127.0.0.1:{port}"));
        config.max_transport_failures = 1;
        config.backoff_base = Duration::from_millis(1);
        config.backoff_cap = Duration::from_millis(2);
        match run_worker(&config) {
            Err(WorkError::Transport { what }) => assert!(what.contains("connect"), "{what}"),
            other => panic!("expected transport error, got {other:?}"),
        }
    }
}
