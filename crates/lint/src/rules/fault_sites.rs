//! `fault-sites` — fault-injection probe sites and the static site
//! roster agree.
//!
//! `accelwall_faults::probe(site)` is a no-op until a fault plan arms,
//! so a typo'd site name fails silently: the probe compiles, the plan
//! arms (if the name happens to validate), and the fault never fires.
//! This rule cross-checks the two directions, the same way
//! `registry-sync` keeps `Registry::paper()` honest:
//!
//! * **code → roster**: every *string-literal* site passed to a
//!   `probe(...)` call in shipping code names either a static site in
//!   `accelwall_faults::sites::ROSTER` or a registered experiment id
//!   (the dynamic site family). Non-literal arguments — the artifact
//!   cache's `probe(experiment.id())`, or a `sites::*` const — are the
//!   supported spellings and are left to arm-time validation;
//! * **roster → code**: every roster entry is actually probed somewhere
//!   in shipping code, by literal name or by a `const` declared in the
//!   sites module, so the roster cannot drift into documenting probe
//!   points that no longer exist.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::{Finding, Lint};
use accelerator_wall::registry::Registry;
use accelwall_faults::sites;

/// See the module docs.
pub struct FaultSites;

/// Roster-level findings anchor here.
const SITES_PATH: &str = "crates/faults/src/sites.rs";

/// The reverse (roster → code) direction only runs when the workspace
/// actually contains the probing crates; fixture workspaces in rule
/// tests usually don't.
const PROBING_DIR: &str = "crates/server";

impl Lint for FaultSites {
    fn name(&self) -> &'static str {
        "fault-sites"
    }

    fn description(&self) -> &'static str {
        "every literal probe() site is in the faults roster, and every roster site is probed"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let static_names: Vec<&str> = sites::names().collect();
        let experiment_ids = Registry::paper().ids();

        // code → roster: literal probe arguments must name a known site.
        for file in &ws.files {
            for probe in probe_calls(file) {
                for tok in &probe.args {
                    if tok.kind != TokenKind::Str {
                        continue;
                    }
                    let name = tok.text.as_str();
                    if static_names.contains(&name) || experiment_ids.contains(&name) {
                        continue;
                    }
                    findings.push(Finding {
                        rule: self.name(),
                        path: file.rel_path.clone(),
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "fault site {name:?} is probed here but is neither in the \
                             static roster ({SITES_PATH}) nor a registered experiment \
                             id; an armed plan could never target it"
                        ),
                    });
                }
            }
        }

        // roster → code: every static site has a live probe. Skipped for
        // fixture workspaces that don't carry the probing crates.
        if ws.files_under(PROBING_DIR).next().is_none() {
            return findings;
        }
        let consts: Vec<(String, String)> = ws
            .files
            .iter()
            .find(|f| f.rel_path == SITES_PATH)
            .map(site_consts)
            .unwrap_or_default();
        for site in sites::ROSTER {
            let probed = ws.files.iter().any(|file| {
                probe_calls(file).iter().any(|probe| {
                    probe.args.iter().any(|tok| match tok.kind {
                        TokenKind::Str => tok.text == site.name,
                        TokenKind::Ident => consts
                            .iter()
                            .any(|(ident, value)| *ident == tok.text && value == site.name),
                        _ => false,
                    })
                })
            });
            if !probed {
                findings.push(Finding {
                    rule: self.name(),
                    path: SITES_PATH.to_string(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "roster site {:?} ({}) is never probed in shipping code; \
                         the roster entry is stale or the probe was removed",
                        site.name, site.location
                    ),
                });
            }
        }
        findings
    }
}

/// One `probe(...)` call site in shipping (non-test) code.
struct ProbeCall<'a> {
    /// Every token between the call's parentheses, nesting included.
    args: Vec<&'a Token>,
}

/// Finds the `probe(...)` call sites in `file`, skipping test scopes and
/// `fn probe` definitions. Returns the argument tokens of each call.
fn probe_calls(file: &SourceFile) -> Vec<ProbeCall<'_>> {
    let code = file.code_tokens();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        let is_call = code[i].is_ident("probe")
            && code[i + 1].is_punct("(")
            && !(i > 0 && code[i - 1].is_ident("fn"))
            && !file.is_test_line(code[i].line);
        if !is_call {
            i += 1;
            continue;
        }
        let mut depth = 1;
        let mut j = i + 2;
        let mut args = Vec::new();
        while j < code.len() && depth > 0 {
            if code[j].is_punct("(") {
                depth += 1;
            } else if code[j].is_punct(")") {
                depth -= 1;
            }
            if depth > 0 {
                args.push(code[j]);
            }
            j += 1;
        }
        out.push(ProbeCall { args });
        i = j;
    }
    out
}

/// Extracts `(IDENT, "value")` pairs from `const IDENT: … = "value";`
/// declarations, so a probe spelled via a sites-module const still
/// counts as probing the named site.
fn site_consts(file: &SourceFile) -> Vec<(String, String)> {
    let code = file.code_tokens();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if code[i].is_ident("const") && code[i + 1].kind == TokenKind::Ident {
            let ident = code[i + 1].text.clone();
            let mut j = i + 2;
            while j < code.len() && !code[j].is_punct(";") {
                if code[j].kind == TokenKind::Str {
                    out.push((ident.clone(), code[j].text.clone()));
                    break;
                }
                j += 1;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;
    use std::path::Path;

    #[test]
    fn the_real_workspace_probes_only_rostered_sites() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let ws = Workspace::discover(here).expect("workspace above crates/lint");
        assert_eq!(FaultSites.check(&ws), Vec::new());
    }

    #[test]
    fn an_unknown_literal_site_is_flagged() {
        let src = "fn f() {\n    accelwall_faults::probe(\"no-such-site\")?;\n    Ok(())\n}\n";
        let ws = workspace(&[("crates/x/src/lib.rs", src)]);
        let found = FaultSites.check(&ws);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].path, "crates/x/src/lib.rs");
        assert_eq!(found[0].line, 2);
        assert!(found[0].message.contains("\"no-such-site\""));
    }

    #[test]
    fn rostered_and_experiment_id_literals_pass() {
        let src = "fn f() {\n\
                   \x20   accelwall_faults::probe(\"serve-request\")?;\n\
                   \x20   accelwall_faults::probe(\"fig3a\")?;\n\
                   \x20   Ok(())\n}\n";
        let ws = workspace(&[("crates/x/src/lib.rs", src)]);
        assert!(FaultSites.check(&ws).is_empty());
    }

    #[test]
    fn probes_in_test_code_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                   let _ = probe(\"made-up-site\");\n    }\n}\n";
        let ws = workspace(&[("crates/x/src/lib.rs", src)]);
        assert!(FaultSites.check(&ws).is_empty());
    }

    #[test]
    fn non_literal_probe_arguments_are_left_to_arm_time() {
        let src = "fn f(experiment: &dyn Experiment) {\n    \
                   let _ = accelwall_faults::probe(experiment.id());\n}\n";
        let ws = workspace(&[("crates/x/src/lib.rs", src)]);
        assert!(FaultSites.check(&ws).is_empty());
    }

    #[test]
    fn an_unprobed_roster_site_is_flagged_when_server_sources_exist() {
        // A workspace carrying crates/server that never probes any
        // static site: every roster entry has gone stale.
        let ws = workspace(&[("crates/server/src/lib.rs", "fn f() {}")]);
        let found = FaultSites.check(&ws);
        assert_eq!(found.len(), sites::ROSTER.len());
        for (finding, site) in found.iter().zip(sites::ROSTER) {
            assert_eq!(finding.path, SITES_PATH);
            assert!(finding.message.contains(&format!("{:?}", site.name)));
            assert!(finding.message.contains("never probed"));
        }
    }

    #[test]
    fn a_probe_via_sites_const_counts_for_the_roster() {
        // Build the fixture from the real roster, so adding a site to
        // `sites::ROSTER` cannot silently invalidate this test: every
        // rostered site gets a const declaration and a probe through it.
        use std::fmt::Write as _;
        let mut sites_src = String::new();
        let mut server_src = String::from("fn f() {\n");
        for site in sites::ROSTER {
            let ident = site.name.replace('-', "_").to_uppercase();
            let _ = writeln!(sites_src, "pub const {ident}: &str = \"{}\";", site.name);
            let _ = writeln!(
                server_src,
                "    let _ = accelwall_faults::probe(sites::{ident});"
            );
        }
        server_src.push_str("}\n");
        let ws = workspace(&[
            ("crates/faults/src/sites.rs", sites_src.as_str()),
            ("crates/server/src/lib.rs", server_src.as_str()),
        ]);
        assert!(FaultSites.check(&ws).is_empty());
    }

    #[test]
    fn site_consts_are_extracted() {
        let f = SourceFile::new(
            "crates/faults/src/sites.rs".into(),
            Path::new("/fixture/sites.rs").into(),
            "pub const A: &str = \"a-site\";\nconst N: usize = 3;\n\
             pub const B: &str = \"b-site\";\n"
                .into(),
        );
        assert_eq!(
            site_consts(&f),
            vec![
                ("A".to_string(), "a-site".to_string()),
                ("B".to_string(), "b-site".to_string()),
            ]
        );
    }
}
