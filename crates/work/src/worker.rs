//! The worker runner: the `accelwall work --join URL` client.
//!
//! A worker is the same binary as the coordinator pointed at a
//! coordinator's HTTP address. It loops lease → heartbeat → compute →
//! complete until the coordinator answers `done`, building its `Ctx`
//! once from the lease's sweep-space marker so every unit it computes
//! is byte-identical to what a local run would have produced.
//!
//! Transport robustness mirrors the coordinator's: every POST retries
//! with capped decorrelated-jitter backoff, 5xx answers (load shedding,
//! injected `work-lease` faults) count as transient, and once the
//! worker has successfully spoken to the coordinator, a permanently
//! unreachable coordinator is treated as "run finished, coordinator
//! exited" rather than an error — workers must outlive their
//! coordinator gracefully.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use accelerator_wall::cache::Ctx;
use accelerator_wall::grids::{Grid, GridRegistry};
use accelerator_wall::json::Value;
use accelerator_wall::prelude::SweepSpace;
use accelwall_stats::rng::{decorrelated_backoff, Rng};

use crate::protocol::{
    lease_request, CompleteReply, CompleteRequest, HeartbeatReply, HeartbeatRequest, LeaseReply,
    COMPLETE_PATH, HEARTBEAT_PATH, LEASE_PATH,
};
use crate::WorkError;

/// Tuning knobs for one worker.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// The coordinator's address (`host:port`, an `http://` prefix is
    /// tolerated).
    pub coordinator: String,
    /// The name this worker leases under; must be unique in the fleet.
    pub name: String,
    /// Units asked for per lease request.
    pub batch: usize,
    /// Read/write timeout on each coordinator connection.
    pub io_timeout: Duration,
    /// Base of the transport retry backoff.
    pub backoff_base: Duration,
    /// Cap of the transport retry backoff.
    pub backoff_cap: Duration,
    /// Consecutive transport failures tolerated before giving up on the
    /// coordinator.
    pub max_transport_failures: u32,
}

impl WorkerConfig {
    /// A default-tuned worker pointed at `coordinator`, named after the
    /// process id.
    pub fn new(coordinator: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            coordinator: coordinator.into(),
            name: format!("worker-{}", std::process::id()),
            batch: 2,
            io_timeout: Duration::from_secs(10),
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(1),
            max_transport_failures: 5,
        }
    }
}

/// What one worker did over its lifetime, printed by the CLI on exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Units leased to this worker.
    pub leased: u64,
    /// Units computed and completed successfully.
    pub computed: u64,
    /// Units whose compute failed (reported to the coordinator).
    pub failed: u64,
    /// Units abandoned because a heartbeat said they were done or
    /// re-issued elsewhere.
    pub abandoned: u64,
}

/// Runs one worker against `config.coordinator` until the coordinator
/// reports the run done (or goes away after having been reachable).
///
/// # Errors
///
/// [`WorkError::Transport`] when the coordinator was never reachable,
/// [`WorkError::Protocol`] on malformed replies, [`WorkError::Grid`]
/// when the leased grid or space is unknown to this build.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerReport, WorkError> {
    WorkerRunner::new(config.clone()).drive()
}

/// Computes one leased unit. Probes the `work-compute` fault site
/// first: an `err` fault becomes a reported unit failure, and a `panic`
/// fault kills the worker mid-batch — exactly the crash the
/// coordinator's lease expiry must absorb — so the probe's panic is
/// deliberately left uncontained.
fn compute_unit(grid: &Arc<dyn Grid>, ctx: &Arc<Ctx>, unit: usize) -> Result<Value, String> {
    accelwall_faults::probe(accelwall_faults::sites::WORK_COMPUTE).map_err(|e| e.to_string())?;
    grid.compute(ctx, unit).map_err(|e| e.to_string())
}

/// The state one worker loop carries: transport health, the cached
/// grid + `Ctx`, and the lifetime report.
struct WorkerRunner {
    config: WorkerConfig,
    /// Normalized `host:port` the HTTP client dials.
    addr: String,
    /// Whether any request has ever succeeded; gates the "coordinator
    /// exited" interpretation of an unreachable peer.
    connected: bool,
    /// Jitter stream for transport backoff. Seeded from the process
    /// id, not the clock.
    jitter: Rng,
    /// `(grid id, space)` the cached pair below was built for.
    cached_for: Option<(String, String)>,
    grid: Option<Arc<dyn Grid>>,
    ctx: Option<Arc<Ctx>>,
    report: WorkerReport,
}

impl WorkerRunner {
    fn new(config: WorkerConfig) -> WorkerRunner {
        let addr = normalize_addr(&config.coordinator);
        WorkerRunner {
            addr,
            connected: false,
            jitter: Rng::seed(
                u64::from(std::process::id()).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
            ),
            cached_for: None,
            grid: None,
            ctx: None,
            report: WorkerReport::default(),
            config,
        }
    }

    fn drive(mut self) -> Result<WorkerReport, WorkError> {
        loop {
            let ask = lease_request(&self.config.name, self.config.batch.max(1));
            let Some(reply) = self.post_with_retry(LEASE_PATH, &ask)? else {
                break; // coordinator exited after we had spoken to it
            };
            match LeaseReply::parse(&reply)? {
                LeaseReply::Done => break,
                LeaseReply::Wait { retry } => {
                    std::thread::sleep(
                        retry.clamp(Duration::from_millis(5), Duration::from_secs(2)),
                    );
                }
                LeaseReply::Units {
                    grid,
                    space,
                    ttl: _,
                    units,
                } => {
                    self.ensure_context(&grid, &space)?;
                    self.report.leased += units.len() as u64;
                    if self.work_batch(units)? {
                        break;
                    }
                }
            }
        }
        Ok(self.report)
    }

    /// Builds (or reuses) the grid + `Ctx` pair the lease names. The
    /// space marker must match the coordinator's, or unit results would
    /// not fold byte-identically.
    fn ensure_context(&mut self, grid: &str, space: &str) -> Result<(), WorkError> {
        if self
            .cached_for
            .as_ref()
            .is_some_and(|(g, s)| g == grid && s == space)
        {
            return Ok(());
        }
        let resolved = GridRegistry::standard().get(grid)?;
        let ctx = match space {
            "coarse" => Ctx::with_space(SweepSpace::coarse()),
            "table3" => Ctx::new(),
            other => {
                return Err(WorkError::Protocol {
                    what: format!("lease names unknown sweep space {other:?}"),
                })
            }
        };
        self.cached_for = Some((grid.to_string(), space.to_string()));
        self.grid = Some(resolved);
        self.ctx = Some(Arc::new(ctx));
        Ok(())
    }

    /// Heartbeats, computes, and completes one leased batch. Returns
    /// `true` when the coordinator reported the whole run done.
    fn work_batch(&mut self, units: Vec<usize>) -> Result<bool, WorkError> {
        let (Some(grid), Some(ctx)) = (self.grid.clone(), self.ctx.clone()) else {
            return Err(WorkError::Protocol {
                what: "batch granted before any grid context".into(),
            });
        };
        let mut remaining = units;
        while !remaining.is_empty() {
            let beat = self.heartbeat(&remaining)?;
            if beat.done {
                self.report.abandoned += remaining.len() as u64;
                return Ok(true);
            }
            if !beat.abandon.is_empty() {
                let before = remaining.len();
                remaining.retain(|u| !beat.abandon.contains(u));
                self.report.abandoned += (before - remaining.len()) as u64;
            }
            let Some(&unit) = remaining.first() else {
                break;
            };
            let outcome = compute_unit(&grid, &ctx, unit);
            match &outcome {
                Ok(_) => self.report.computed += 1,
                Err(_) => self.report.failed += 1,
            }
            let request = CompleteRequest {
                worker: self.config.name.clone(),
                unit,
                outcome,
            };
            let Some(reply) = self.post_with_retry(COMPLETE_PATH, &request.to_value())? else {
                return Ok(true); // coordinator exited; nothing left to report to
            };
            let reply = CompleteReply::parse(&reply)?;
            remaining.retain(|u| *u != unit);
            if reply.done {
                self.report.abandoned += remaining.len() as u64;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Sends one liveness ping for the units still held. Probes the
    /// `work-heartbeat` fault site first: a `hang` here silences the
    /// worker past its lease deadline (the coordinator must expire and
    /// re-issue), and an `err` models a ping lost on the wire — the
    /// beat is skipped, not fatal. Transport failures are likewise
    /// best-effort: the next lease or complete will surface them.
    fn heartbeat(&mut self, units: &[usize]) -> Result<HeartbeatReply, WorkError> {
        let silent = HeartbeatReply {
            abandon: Vec::new(),
            done: false,
        };
        if accelwall_faults::probe(accelwall_faults::sites::WORK_HEARTBEAT).is_err() {
            return Ok(silent);
        }
        let request = HeartbeatRequest {
            worker: self.config.name.clone(),
            units: units.to_vec(),
        };
        match self.post(HEARTBEAT_PATH, &request.to_value()) {
            Ok((200, body)) => HeartbeatReply::parse(&parse_json(HEARTBEAT_PATH, &body)?),
            Ok(_) | Err(_) => Ok(silent),
        }
    }

    /// POSTs `body`, retrying transport failures and 5xx answers with
    /// capped decorrelated-jitter backoff. `Ok(None)` means the
    /// coordinator has gone away after previously being reachable —
    /// the worker's signal to exit cleanly.
    fn post_with_retry(&mut self, path: &str, body: &Value) -> Result<Option<Value>, WorkError> {
        let mut failures = 0u32;
        let mut backoff = Duration::ZERO;
        loop {
            let soft = match self.post(path, body) {
                Ok((200, text)) => {
                    self.connected = true;
                    return parse_json(path, &text).map(Some);
                }
                Ok((status, _)) if status >= 500 => WorkError::Transport {
                    what: format!("{path} answered transient status {status}"),
                },
                Ok((status, text)) => {
                    return Err(WorkError::Protocol {
                        what: format!("{path} answered {status}: {}", text.trim()),
                    })
                }
                Err(e) => e,
            };
            failures += 1;
            if failures > self.config.max_transport_failures {
                return if self.connected { Ok(None) } else { Err(soft) };
            }
            backoff = decorrelated_backoff(
                &mut self.jitter,
                self.config.backoff_base,
                self.config.backoff_cap,
                backoff,
            );
            std::thread::sleep(backoff);
        }
    }

    /// One `POST path` round trip: connect, send, half-close, read the
    /// full answer. Returns `(status, body)`.
    fn post(&self, path: &str, body: &Value) -> Result<(u16, String), WorkError> {
        let transport = |what: String| WorkError::Transport { what };
        let payload = body.pretty();
        let stream = TcpStream::connect(&self.addr)
            .map_err(|e| transport(format!("connect {}: {e}", self.addr)))?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.config.io_timeout)))
            .map_err(|e| transport(format!("socket timeouts: {e}")))?;
        let mut stream = stream;
        let request = format!(
            "POST {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            self.addr,
            payload.len(),
        );
        stream
            .write_all(request.as_bytes())
            .and_then(|()| stream.shutdown(Shutdown::Write))
            .map_err(|e| transport(format!("send {path}: {e}")))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| transport(format!("receive {path}: {e}")))?;
        parse_response(&raw)
    }
}

/// Strips an `http://` prefix and trailing slashes off a coordinator
/// address, leaving the `host:port` the socket dials.
fn normalize_addr(coordinator: &str) -> String {
    coordinator
        .trim()
        .trim_start_matches("http://")
        .trim_end_matches('/')
        .to_string()
}

/// Splits a raw HTTP/1.1 response into `(status, body)`.
fn parse_response(raw: &str) -> Result<(u16, String), WorkError> {
    let violation = |what: String| WorkError::Protocol { what };
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| violation("response has no parsable status line".into()))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map_or("", |(_, body)| body)
        .to_string();
    Ok((status, body))
}

/// Parses a 200 body as JSON, labeling failures with the route.
fn parse_json(path: &str, body: &str) -> Result<Value, WorkError> {
    Value::parse(body).map_err(|e| WorkError::Protocol {
        what: format!("{path} answered unparsable JSON: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;
    use std::net::TcpListener;

    #[test]
    fn addresses_normalize_to_host_port() {
        assert_eq!(normalize_addr("http://127.0.0.1:8390/"), "127.0.0.1:8390");
        assert_eq!(normalize_addr(" 10.0.0.2:80 "), "10.0.0.2:80");
        assert_eq!(normalize_addr("localhost:1"), "localhost:1");
    }

    #[test]
    fn responses_split_into_status_and_body() {
        let (status, body) =
            parse_response("HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\nshed\n")
                .unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "shed\n");
        assert!(parse_response("garbage").is_err());
    }

    /// Accepts `hits` connections, answering each with `replies[i]`.
    fn fake_coordinator(replies: Vec<String>) -> (String, std::thread::JoinHandle<Vec<String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for reply in replies {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = std::io::BufReader::new(stream);
                let mut request = String::new();
                // Connection: close + client half-close means EOF marks
                // the end of the request.
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap() == 0 {
                        break;
                    }
                    request.push_str(&line);
                }
                seen.push(request);
                let mut stream = reader.into_inner();
                let http = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{reply}",
                    reply.len()
                );
                stream.write_all(http.as_bytes()).unwrap();
            }
            seen
        });
        (addr, handle)
    }

    #[test]
    fn a_worker_exits_cleanly_on_done() {
        let (addr, server) = fake_coordinator(vec![LeaseReply::Done.to_value().pretty()]);
        let mut config = WorkerConfig::new(addr);
        config.name = "w-test".into();
        let report = run_worker(&config).unwrap();
        assert_eq!(report, WorkerReport::default());
        let seen = server.join().unwrap();
        assert!(
            seen[0].starts_with("POST /work/lease HTTP/1.1\r\n"),
            "{}",
            seen[0]
        );
        assert!(seen[0].contains("\"worker\": \"w-test\""), "{}", seen[0]);
    }

    #[test]
    fn an_unreachable_coordinator_is_a_transport_error() {
        // Bind-then-drop guarantees a dead port.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let mut config = WorkerConfig::new(format!("127.0.0.1:{port}"));
        config.max_transport_failures = 1;
        config.backoff_base = Duration::from_millis(1);
        config.backoff_cap = Duration::from_millis(2);
        match run_worker(&config) {
            Err(WorkError::Transport { what }) => assert!(what.contains("connect"), "{what}"),
            other => panic!("expected transport error, got {other:?}"),
        }
    }
}
