//! A fixed-size worker thread pool over an [`mpsc`] channel.
//!
//! The server accepts connections on one thread and hands each one to
//! this pool. The channel is a [`mpsc::sync_channel`] with a bounded
//! backlog, which is the server's backpressure mechanism: when every
//! worker is busy and the backlog is full, [`ThreadPool::try_execute`]
//! fails immediately and *returns the work item*, so the acceptor can
//! answer `503 Service Unavailable` on the rejected connection instead
//! of queueing unboundedly or dropping it silently.
//!
//! Dropping the pool (or calling [`ThreadPool::join`]) closes the
//! channel; workers finish the jobs already queued, then exit — that is
//! what makes the server's shutdown a *drain* rather than an abort.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A fixed set of worker threads applying one handler to queued items.
#[derive(Debug)]
pub struct ThreadPool<T: Send + 'static> {
    sender: Option<mpsc::SyncSender<T>>,
    workers: Vec<JoinHandle<()>>,
}

/// Why an item could not be enqueued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// Every worker is busy and the backlog is full (backpressure).
    Saturated,
    /// The pool is shutting down and accepts no new work.
    Closed,
}

/// An item the pool refused, handed back so the caller can shed load.
#[derive(Debug)]
pub struct Rejected<T> {
    /// The item that was not enqueued.
    pub item: T,
    /// Why it was refused.
    pub reason: PoolError,
}

impl<T: Send + 'static> ThreadPool<T> {
    /// Spawns `workers` threads sharing a queue of at most `backlog`
    /// pending items, each applying `handler`. Both counts are clamped
    /// to at least 1.
    pub fn new(
        workers: usize,
        backlog: usize,
        handler: impl Fn(T) + Send + Sync + 'static,
    ) -> ThreadPool<T> {
        let (sender, receiver) = mpsc::sync_channel::<T>(backlog.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let handler = Arc::new(handler);
        let workers = (0..workers.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("accelwall-worker-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only for the recv so the other
                        // workers stay free to pick up the next item.
                        let item = match receiver.lock() {
                            Ok(rx) => rx.recv(),
                            Err(_) => break,
                        };
                        match item {
                            Ok(item) => handler(item),
                            Err(_) => break, // channel closed and drained
                        }
                    })
                    // lint:allow(no-panic-paths): failing to spawn at startup leaves no useful fallback; dying loudly before serving is correct
                    .expect("spawning a worker thread")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
        }
    }

    /// Enqueues an item without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item with [`PoolError::Saturated`] when the backlog
    /// is full, or [`PoolError::Closed`] once shutdown began.
    pub fn try_execute(&self, item: T) -> Result<(), Rejected<T>> {
        let Some(sender) = self.sender.as_ref() else {
            return Err(Rejected {
                item,
                reason: PoolError::Closed,
            });
        };
        sender.try_send(item).map_err(|e| match e {
            mpsc::TrySendError::Full(item) => Rejected {
                item,
                reason: PoolError::Saturated,
            },
            mpsc::TrySendError::Disconnected(item) => Rejected {
                item,
                reason: PoolError::Closed,
            },
        })
    }

    /// Closes the queue and blocks until every queued item has been
    /// handled.
    pub fn join(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.sender = None; // close the channel: workers drain then exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl<T: Send + 'static> Drop for ThreadPool<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_queued_item_before_join_returns() {
        let hits = Arc::new(AtomicUsize::new(0));
        let sink = Arc::clone(&hits);
        let pool = ThreadPool::new(4, 16, move |n: usize| {
            sink.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..16 {
            pool.try_execute(1).unwrap();
        }
        pool.join();
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn saturation_returns_the_item_instead_of_queueing() {
        let gate = Arc::new(std::sync::Barrier::new(2));
        let worker_gate = Arc::clone(&gate);
        let pool = ThreadPool::new(1, 1, move |block: bool| {
            if block {
                worker_gate.wait();
            }
        });
        // Occupy the single worker...
        pool.try_execute(true).unwrap();
        // ...and give the queue a moment to hand the item over.
        std::thread::sleep(Duration::from_millis(50));
        // One item fits in the backlog; the next must bounce back.
        let mut bounced = None;
        for _ in 0..2 {
            if let Err(rejected) = pool.try_execute(false) {
                assert_eq!(rejected.reason, PoolError::Saturated);
                bounced = Some(rejected.item);
            }
        }
        assert_eq!(
            bounced,
            Some(false),
            "a full backlog must hand the item back"
        );
        gate.wait();
        pool.join();
    }
}
