//! A sharded, byte-capped LRU over pre-serialized response bodies.
//!
//! Query responses are small JSON documents that are expensive to
//! recompute relative to a hash lookup, so the cache stores the exact
//! wire bytes ([`std::sync::Arc`]`<Vec<u8>>`) keyed by the canonical
//! `u64` of the spec. The byte budget is split evenly across a fixed
//! number of shards, each behind its own mutex, so concurrent server
//! workers rarely contend; eviction is least-recently-used within a
//! shard, driven by a monotonic per-shard tick. The cap is a hard
//! invariant: an insert first evicts until the new body fits, and a body
//! larger than a whole shard is refused outright (the `oversize`
//! counter) rather than wedging the cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shard count: a power of two so the key's high bits pick a shard
/// without bias from the FNV low bits.
const SHARDS: usize = 8;

struct Entry {
    key: u64,
    body: Arc<Vec<u8>>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<Entry>,
    bytes: usize,
    tick: u64,
}

/// Observed cache behaviour, for `/metrics` and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Bodies admitted.
    pub insertions: u64,
    /// Bodies evicted to make room.
    pub evictions: u64,
    /// Bodies refused because they exceed a whole shard's budget.
    pub oversize: u64,
    /// Bytes currently resident.
    pub bytes: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// The configured byte cap.
    pub capacity_bytes: usize,
}

/// The sharded LRU itself. Cheap to share: all methods take `&self`.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    oversize: AtomicU64,
}

impl QueryCache {
    /// Creates a cache bounded to roughly `capacity_bytes` of bodies
    /// (split evenly across shards; each shard holds at least one
    /// byte of budget so a zero cap degenerates to "cache nothing").
    pub fn new(capacity_bytes: usize) -> QueryCache {
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: capacity_bytes / SHARDS,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            oversize: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // High bits: FNV-1a mixes them well, and the low bits already
        // steered the entry's position within the shard's scan.
        let index = (key >> 61) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Looks up a body, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Arc<Vec<u8>>> {
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(entry) = shard.entries.iter_mut().find(|e| e.key == key) {
            entry.last_used = tick;
            let body = Arc::clone(&entry.body);
            drop(shard);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(body)
        } else {
            drop(shard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Admits a body, evicting least-recently-used entries until it
    /// fits. A body larger than a whole shard's budget is refused (the
    /// response is still served, just never cached). Returns whether
    /// the body was admitted.
    pub fn insert(&self, key: u64, body: Arc<Vec<u8>>) -> bool {
        let cost = body.len();
        if cost > self.shard_cap {
            self.oversize.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut evicted = 0u64;
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(pos) = shard.entries.iter().position(|e| e.key == key) {
            // Racing computes of the same key: drop the older body and
            // readmit the newer one through the same budget math.
            let gone = shard.entries.swap_remove(pos);
            shard.bytes -= gone.body.len();
        }
        while shard.bytes + cost > self.shard_cap {
            let victim = shard
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let gone = shard.entries.swap_remove(i);
                    shard.bytes -= gone.body.len();
                    evicted += 1;
                }
                None => break,
            }
        }
        shard.bytes += cost;
        shard.entries.push(Entry {
            key,
            body,
            last_used: tick,
        });
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        true
    }

    /// A consistent-enough snapshot of the counters and gauges.
    pub fn stats(&self) -> QueryCacheStats {
        let (mut bytes, mut entries) = (0, 0);
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            bytes += shard.bytes;
            entries += shard.entries.len();
        }
        QueryCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            oversize: self.oversize.load(Ordering::Relaxed),
            bytes,
            entries,
            capacity_bytes: self.shard_cap * self.shards.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(len: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; len])
    }

    #[test]
    fn hits_refresh_recency_and_misses_count() {
        let cache = QueryCache::new(8 * 64);
        assert!(cache.get(1).is_none());
        cache.insert(1, body(10, b'a'));
        assert_eq!(cache.get(1).unwrap().len(), 10);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.bytes, 10);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // One shard's budget is 64 bytes; keys 0..3 shifted into the
        // same shard via identical high bits.
        let cache = QueryCache::new(8 * 64);
        let k = |i: u64| i; // high bits zero: all land in shard 0
        cache.insert(k(1), body(30, b'a'));
        cache.insert(k(2), body(30, b'b'));
        // Touch 1 so 2 is the LRU victim.
        assert!(cache.get(k(1)).is_some());
        cache.insert(k(3), body(30, b'c'));
        assert!(cache.get(k(2)).is_none(), "LRU entry should be evicted");
        assert!(cache.get(k(1)).is_some());
        assert!(cache.get(k(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn refuses_oversize_bodies() {
        let cache = QueryCache::new(8 * 64);
        assert!(!cache.insert(9, body(65, b'x')));
        assert!(cache.get(9).is_none());
        let stats = cache.stats();
        assert_eq!(stats.oversize, 1);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn reinserting_a_key_replaces_the_body_in_place() {
        let cache = QueryCache::new(8 * 64);
        cache.insert(5, body(10, b'a'));
        cache.insert(5, body(20, b'b'));
        assert_eq!(cache.get(5).unwrap().len(), 20);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 20);
    }

    /// The acceptance invariant: a randomized 1 000-operation stress
    /// never exceeds the byte cap — checked after *every* operation —
    /// and actually exercises eviction.
    #[test]
    fn randomized_stress_never_exceeds_the_cap() {
        let cap = 4096;
        let cache = QueryCache::new(cap);
        // Deterministic SplitMix64 stream: no RNG dependency, same
        // stress every run.
        let mut state = 0x9e37_79b9_97f4_a7c5u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for _ in 0..1000 {
            let r = next();
            let key = r % 257;
            if r % 3 == 0 {
                let _ = cache.get(key);
            } else {
                let len = 1 + (r >> 16) as usize % 200;
                cache.insert(key, body(len, b'z'));
            }
            let stats = cache.stats();
            assert!(
                stats.bytes <= cap,
                "cache holds {} bytes, cap is {cap}",
                stats.bytes
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "stress should evict: {stats:?}");
        assert!(stats.hits > 0 && stats.misses > 0);
    }
}
