//! A dependency-free data-parallel runtime for the hot compute kernels.
//!
//! The pipeline already overlaps *experiments* (dependency waves in the
//! registry, per-slot compute threads in the artifact cache); this crate
//! parallelizes the serial kernels *inside* an experiment — the
//! design-space sweeps, corpus generation, and regression accumulations
//! that dominate the cold path — without changing a single output byte.
//!
//! # Design
//!
//! * **One global pool.** Worker threads are spawned lazily on first
//!   use, sized to [`threads`]` - 1` (the caller is the remaining
//!   thread). The size comes from, in priority order: a programmatic
//!   [`set_threads`] override (the `--threads` CLI flag), the
//!   `ACCELWALL_THREADS` environment variable, and
//!   `std::thread::available_parallelism`.
//! * **Chunked jobs with tail stealing.** A job divides an index range
//!   `0..len` into fixed-size chunks and publishes a single atomic
//!   cursor packing a head and a tail index. The submitting thread
//!   claims chunks from the head; idle pool workers steal chunks from
//!   the tail. The caller always participates in its own job, so every
//!   job completes even when the pool is saturated (or has zero
//!   workers).
//! * **Deterministic ordering.** [`par_map`] places each result by its
//!   index, so its output is byte-identical to the serial loop no
//!   matter how chunks were scheduled. [`par_chunks`] and
//!   [`par_map_reduce`] take an *explicit* chunk size and fold partial
//!   results in chunk-index order (a pairwise tree), so even
//!   non-associative float reductions are independent of thread count.
//! * **Panic propagation.** A panicking chunk does not poison the pool:
//!   the payload is captured, remaining chunks finish, and the payload
//!   is re-raised on the submitting thread via `resume_unwind` — which
//!   composes with the `ArtifactCache` containment (`catch_unwind` →
//!   `ExperimentPanicked`) exactly like a serial panic.
//!
//! The pool exports three counters for `/metrics`:
//! `accelwall_par_workers`, `accelwall_par_jobs_total`, and
//! `accelwall_par_steals_total` ([`workers`], [`jobs_total`],
//! [`steals_total`]).

#![forbid(unsafe_code)]

use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Environment variable overriding the pool size (a positive integer).
pub const THREADS_ENV: &str = "ACCELWALL_THREADS";

/// How long a cached detached-spawn thread stays parked waiting for its
/// next task before exiting.
const SPAWN_KEEPALIVE: Duration = Duration::from_secs(10);

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static JOBS_TOTAL: AtomicU64 = AtomicU64::new(0);
static STEALS_TOTAL: AtomicU64 = AtomicU64::new(0);
static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

/// Locks a mutex, riding through poisoning: a worker that panicked
/// while holding a pool lock must not wedge every later job. Panics are
/// separately captured per chunk, so the guarded state stays coherent.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Overrides the pool size (total parallelism, *including* the calling
/// thread). Takes effect only if the pool has not started yet — the
/// first `par_*` call freezes the size — so the CLI applies it before
/// any kernel runs. Zero is ignored.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The pool's total parallelism (workers + the calling thread). Reports
/// the frozen size once the pool is live, the would-be size otherwise.
pub fn threads() -> usize {
    POOL.get().map_or_else(resolve_threads, |p| p.threads)
}

/// Number of live pool worker threads (`threads() - 1`); the
/// `accelwall_par_workers` gauge.
pub fn workers() -> usize {
    POOL.get().map_or_else(
        || resolve_threads() - 1,
        |p| p.workers.load(Ordering::Relaxed),
    )
}

/// Total `par_*` jobs executed since process start; the
/// `accelwall_par_jobs_total` counter.
pub fn jobs_total() -> u64 {
    JOBS_TOTAL.load(Ordering::Relaxed)
}

/// Total chunks claimed by pool workers (rather than the submitting
/// thread); the `accelwall_par_steals_total` counter.
pub fn steals_total() -> u64 {
    STEALS_TOTAL.load(Ordering::Relaxed)
}

fn resolve_threads() -> usize {
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A chunked job the pool can steal from. Implemented by the private
/// generic job state; object-safe so the queue can hold any item type.
trait Job: Send + Sync {
    /// Whether unclaimed chunks remain.
    fn has_work(&self) -> bool;
    /// Claims one chunk from the tail and runs it. Returns `false` when
    /// nothing was left to steal.
    fn steal_chunk(&self) -> bool;
}

struct Pool {
    /// Frozen total parallelism (workers + caller).
    threads: usize,
    /// Worker threads actually live (spawning can fail under thread
    /// exhaustion; jobs still complete on the caller).
    workers: AtomicUsize,
    /// Jobs with potentially unclaimed chunks, oldest first.
    queue: Mutex<Vec<Arc<dyn Job>>>,
    /// Signals workers that a new job was published.
    wake: Condvar,
}

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let threads = resolve_threads();
        let pool = Arc::new(Pool {
            threads,
            workers: AtomicUsize::new(0),
            queue: Mutex::new(Vec::new()),
            wake: Condvar::new(),
        });
        for id in 0..threads.saturating_sub(1) {
            let shared = Arc::clone(&pool);
            let worker = std::thread::Builder::new()
                .name(format!("accelwall-par-{id}"))
                .spawn(move || worker_loop(&shared));
            if worker.is_ok() {
                pool.workers.fetch_add(1, Ordering::Relaxed);
            }
        }
        pool
    })
}

fn worker_loop(pool: &Pool) {
    loop {
        let job = {
            let mut queue = lock(&pool.queue);
            loop {
                if let Some(job) = queue.iter().find(|j| j.has_work()).cloned() {
                    break job;
                }
                queue = pool
                    .wake
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        while job.steal_chunk() {}
        // The job has no stealable chunks left; drop it from the queue
        // (the owner also removes it on completion — either order works).
        lock(&pool.queue).retain(|j| !Arc::ptr_eq(j, &job));
    }
}

/// Shared state of one chunked job.
struct JobState<T, F> {
    f: F,
    len: usize,
    chunk_size: usize,
    n_chunks: usize,
    /// Packs `head` (next chunk for the owner) in the high 32 bits and
    /// `tail` (one past the last unstolen chunk) in the low 32 bits.
    /// Chunks remain while `head < tail`.
    cursor: AtomicU64,
    state: Mutex<JobProgress<T>>,
    done: Condvar,
}

struct JobProgress<T> {
    /// Per-chunk results, placed by chunk index.
    results: Vec<Option<T>>,
    /// Chunks finished (successfully or by panic).
    completed: usize,
    /// First captured panic payload, re-raised on the owner.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl<T, F> JobState<T, F>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Send + Sync,
{
    fn new(len: usize, chunk_size: usize, n_chunks: usize, f: F) -> Self {
        JobState {
            f,
            len,
            chunk_size,
            n_chunks,
            cursor: AtomicU64::new(n_chunks as u64),
            state: Mutex::new(JobProgress {
                results: (0..n_chunks).map(|_| None).collect(),
                completed: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn claim_head(&self) -> Option<usize> {
        self.cursor
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |packed| {
                let (head, tail) = (packed >> 32, packed & 0xFFFF_FFFF);
                (head < tail).then(|| ((head + 1) << 32) | tail)
            })
            .ok()
            .map(|packed| (packed >> 32) as usize)
    }

    fn claim_tail(&self) -> Option<usize> {
        self.cursor
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |packed| {
                let (head, tail) = (packed >> 32, packed & 0xFFFF_FFFF);
                (head < tail).then(|| (head << 32) | (tail - 1))
            })
            .ok()
            .map(|packed| ((packed & 0xFFFF_FFFF) - 1) as usize)
    }

    fn run_chunk(&self, chunk: usize) {
        let start = chunk * self.chunk_size;
        let end = (start + self.chunk_size).min(self.len);
        let outcome = catch_unwind(AssertUnwindSafe(|| (self.f)(start..end)));
        let mut state = lock(&self.state);
        match outcome {
            Ok(value) => state.results[chunk] = Some(value),
            Err(payload) => {
                // Keep the first payload; later ones (if any) are dropped,
                // mirroring what a serial loop would have surfaced.
                state.panic.get_or_insert(payload);
            }
        }
        state.completed += 1;
        if state.completed == self.n_chunks {
            self.done.notify_all();
        }
    }
}

impl<T, F> Job for JobState<T, F>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Send + Sync,
{
    fn has_work(&self) -> bool {
        let packed = self.cursor.load(Ordering::Acquire);
        (packed >> 32) < (packed & 0xFFFF_FFFF)
    }

    fn steal_chunk(&self) -> bool {
        match self.claim_tail() {
            Some(chunk) => {
                STEALS_TOTAL.fetch_add(1, Ordering::Relaxed);
                self.run_chunk(chunk);
                true
            }
            None => false,
        }
    }
}

/// Maps `f` over each chunk of `0..len` and returns the per-chunk
/// results **in chunk-index order**.
///
/// The chunk boundaries are a pure function of `len` and `chunk_size`,
/// so for a fixed `chunk_size` the output — including every float
/// rounding inside a chunk — is independent of thread count and
/// scheduling. This is the primitive deterministic reductions build on.
///
/// # Panics
///
/// Panics if `chunk_size` is zero, and re-raises (on this thread) the
/// first panic raised by `f` in any chunk.
pub fn par_chunks<T, F>(len: usize, chunk_size: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Range<usize>) -> T + Send + Sync + 'static,
{
    assert!(chunk_size > 0, "par chunk size must be positive");
    if len == 0 {
        return Vec::new();
    }
    JOBS_TOTAL.fetch_add(1, Ordering::Relaxed);
    let n_chunks = len.div_ceil(chunk_size);
    let pool = pool();
    if pool.threads == 1 || n_chunks == 1 {
        // Inline fast path: the identical chunked traversal, no pool
        // round-trip. Panics propagate directly.
        return (0..n_chunks)
            .map(|chunk| {
                let start = chunk * chunk_size;
                f(start..(start + chunk_size).min(len))
            })
            .collect();
    }

    let job = Arc::new(JobState::new(len, chunk_size, n_chunks, f));
    let published: Arc<dyn Job> = Arc::clone(&job) as Arc<dyn Job>;
    {
        let mut queue = lock(&pool.queue);
        queue.push(Arc::clone(&published));
    }
    pool.wake.notify_all();

    // The owner drains chunks from the head while workers steal from
    // the tail; participation guarantees completion with zero workers.
    while let Some(chunk) = job.claim_head() {
        job.run_chunk(chunk);
    }
    let mut state = lock(&job.state);
    while state.completed < job.n_chunks {
        state = job.done.wait(state).unwrap_or_else(PoisonError::into_inner);
    }
    let panic = state.panic.take();
    let results = std::mem::take(&mut state.results);
    drop(state);
    lock(&pool.queue).retain(|j| !Arc::ptr_eq(j, &published));
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
    // Every chunk completed without panicking, so every slot is Some.
    results.into_iter().flatten().collect()
}

/// Maps `f` over `0..len` in parallel; `out[i] == f(i)` exactly as in
/// the serial loop, independent of chunking *and* thread count (each
/// element is placed by its index).
///
/// # Panics
///
/// Re-raises the first panic raised by `f`.
pub fn par_map<T, F>(len: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let chunk_size = default_chunk_size(len);
    par_chunks(len, chunk_size, move |range| {
        range.map(&f).collect::<Vec<T>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Maps `f` over each fixed-size chunk of `0..len` and folds the chunk
/// results with `reduce` in a pairwise tree over chunk-index order.
/// Deterministic for a fixed `chunk_size` even when `reduce` is not
/// associative (float sums). Returns `None` for an empty range.
///
/// # Panics
///
/// Panics if `chunk_size` is zero; re-raises the first panic from `f`.
pub fn par_map_reduce<T, M, R>(len: usize, chunk_size: usize, map: M, reduce: R) -> Option<T>
where
    T: Send + 'static,
    M: Fn(Range<usize>) -> T + Send + Sync + 'static,
    R: Fn(T, T) -> T,
{
    tree_fold(par_chunks(len, chunk_size, map), reduce)
}

/// Pairwise tree fold: rounds of merging adjacent elements until one
/// remains. The merge order is a pure function of the input length, so
/// the result is deterministic even when `reduce` is not associative
/// (float sums). Returns `None` for an empty input.
///
/// This is the fold [`par_map_reduce`] applies to its chunk results,
/// exposed so callers that gather parts through other means — the
/// distributed work tier folds worker-computed units by index — merge
/// byte-identically to the single-process path.
pub fn tree_fold<T>(mut parts: Vec<T>, reduce: impl Fn(T, T) -> T) -> Option<T> {
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut items = parts.into_iter();
        while let Some(left) = items.next() {
            match items.next() {
                Some(right) => next.push(reduce(left, right)),
                None => next.push(left),
            }
        }
        parts = next;
    }
    parts.pop()
}

/// Picks a chunk size for order-insensitive maps: enough chunks for the
/// pool to balance (4 per thread), never more chunks than elements.
fn default_chunk_size(len: usize) -> usize {
    len.div_ceil(4 * threads().max(1)).max(1)
}

type Task = Box<dyn FnOnce() + Send>;

static IDLE_SPAWNERS: Mutex<Vec<Sender<Task>>> = Mutex::new(Vec::new());

/// Runs `f` on a detached background thread, reusing a cached idle
/// thread when one is available instead of spawning a fresh OS thread
/// per call — the artifact cache routes its compute attempts here so
/// retries under backoff don't churn threads.
///
/// Semantics match `thread::spawn` of a fire-and-forget closure: the
/// task may outlive the caller (hung computes keep running), a
/// panicking task kills only its carrier thread (the next spawn gets a
/// fresh one), and if the OS refuses a new thread the task runs inline
/// on the caller. `name` is used when a fresh carrier thread must be
/// created; a reused carrier keeps its original name.
pub fn spawn_detached<F>(name: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let mut task: Task = Box::new(f);
    // Hand the task to a parked carrier if any is alive. A send fails
    // only when the carrier timed out and exited; its stale sender is
    // discarded and we try the next.
    loop {
        let idle = lock(&IDLE_SPAWNERS).pop();
        match idle {
            Some(sender) => match sender.send(task) {
                Ok(()) => return,
                Err(returned) => task = returned.0,
            },
            None => break,
        }
    }
    // No carrier available: spawn one that runs this task and then
    // parks for reuse. The slot indirection lets the caller recover the
    // task if the spawn itself fails (thread exhaustion) and run inline.
    let slot = Arc::new(Mutex::new(Some(task)));
    let carried = Arc::clone(&slot);
    let spawned = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            let mut task = lock(&carried).take();
            while let Some(run) = task.take() {
                run();
                // lint:allow(bounded-channel): carrier handoff holds at most one task by construction — each sender is single-use, consumed when an idle spawner is claimed
                let (sender, receiver) = channel::<Task>();
                lock(&IDLE_SPAWNERS).push(sender);
                task = receiver.recv_timeout(SPAWN_KEEPALIVE).ok();
            }
        });
    if spawned.is_err() {
        if let Some(run) = lock(&slot).take() {
            run();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_matches_the_serial_loop() {
        let out = par_map(1000, |i| i * i);
        let serial: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map(1, |i| i + 41), vec![41]);
    }

    #[test]
    fn par_chunks_covers_the_range_exactly_once_in_order() {
        let ranges = par_chunks(103, 10, |r| r);
        assert_eq!(ranges.len(), 11);
        let mut next = 0;
        for r in ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 103);
    }

    #[test]
    fn float_reduction_is_deterministic_for_fixed_chunks() {
        let sum = |attempt: u32| {
            let _ = attempt;
            par_map_reduce(
                10_000,
                64,
                |r| r.map(|i| (i as f64).sqrt() * 1e-3).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap_or(0.0)
        };
        let first = sum(0);
        for attempt in 1..8 {
            assert!(first.to_bits() == sum(attempt).to_bits());
        }
    }

    #[test]
    fn par_map_reduce_empty_is_none() {
        assert_eq!(par_map_reduce(0, 8, |r| r.len(), |a, b| a + b), None);
    }

    #[test]
    fn tree_fold_folds_every_element() {
        let total = tree_fold((1..=100).collect(), |a: u64, b| a + b);
        assert_eq!(total, Some(5050));
    }

    #[test]
    fn tree_fold_merge_order_is_a_pure_function_of_length() {
        // A non-associative reduce (string bracketing) pins the pairwise
        // merge tree: the distributed fold relies on this exact shape.
        let parts: Vec<String> = (0..5).map(|i| i.to_string()).collect();
        let folded = tree_fold(parts, |a, b| format!("({a}+{b})"));
        assert_eq!(folded.as_deref(), Some("(((0+1)+(2+3))+4)"));
    }

    #[test]
    fn a_panicking_chunk_resurfaces_on_the_caller_and_spares_the_pool() {
        let result = catch_unwind(|| {
            par_map(500, |i| {
                assert!(i != 321, "injected par panic");
                i
            })
        });
        let payload = result.expect_err("panic must propagate");
        let text = payload.downcast_ref::<&str>().map_or_else(
            || {
                payload
                    .downcast_ref::<String>()
                    .cloned()
                    .unwrap_or_default()
            },
            |s| (*s).to_string(),
        );
        assert!(text.contains("injected par panic"), "payload: {text}");
        // The pool survives and later jobs still run.
        assert_eq!(par_map(100, |i| i + 1).len(), 100);
    }

    #[test]
    fn counters_expose_pool_activity() {
        let (jobs_before, steals_before) = (jobs_total(), steals_total());
        let _ = par_map(256, |i| i);
        assert!(jobs_total() > jobs_before);
        assert!(workers() + 1 == threads() || POOL.get().is_none());
        // The steal counter only ever moves forward, and reading it
        // mid-job must not race or panic.
        assert!(steals_total() >= steals_before);
    }

    #[test]
    fn spawn_detached_runs_the_task_and_reuses_carriers() {
        let (tx, rx) = channel();
        spawn_detached("accelwall-test-spawn", move || {
            tx.send(std::thread::current().id()).unwrap();
        });
        let first = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        // Give the carrier a beat to park itself, then reuse it.
        std::thread::sleep(Duration::from_millis(50));
        let (tx, rx) = channel();
        spawn_detached("accelwall-test-spawn-2", move || {
            tx.send(std::thread::current().id()).unwrap();
        });
        let second = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(first, second, "second task should reuse the carrier");
    }

    #[test]
    fn spawn_detached_survives_a_panicking_task() {
        static RAN: AtomicBool = AtomicBool::new(false);
        spawn_detached("accelwall-test-panicker", || {
            panic!("contained: detached task panic")
        });
        std::thread::sleep(Duration::from_millis(50));
        let (tx, rx) = channel();
        spawn_detached("accelwall-test-after-panic", move || {
            RAN.store(true, Ordering::Relaxed);
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(RAN.load(Ordering::Relaxed));
    }
}
