//! `accelwall-faults` — deterministic fault injection for the stack.
//!
//! The ROADMAP's north star is a server that survives heavy traffic, and
//! the paper's method is to *characterize a limit before you hit it*.
//! This crate applies the same discipline to failures: instead of
//! waiting for a panicking experiment or a transient compute error to
//! show up in production, a [`FaultPlan`] provokes every failure mode on
//! demand so tests can prove the stack contains it.
//!
//! A plan is parsed from a spec string — usually the `ACCELWALL_FAULTS`
//! environment variable ([`ENV_VAR`]) — of comma-separated entries:
//!
//! ```text
//! fig3b:err:2,fig14:panic:1,table5:hang:500ms
//! ```
//!
//! Each entry names an injection **site**, a fault **kind**, and a
//! **budget**:
//!
//! | Kind | Budget | Effect at the probe |
//! |---|---|---|
//! | `err:N` | first `N` hits | returns [`InjectedFault`] (a transient error) |
//! | `panic:N` | first `N` hits | panics (containment must catch it) |
//! | `hang:DUR` | first hit | sleeps `DUR` (`500ms`, `2s`, `0.5s`), then passes |
//!
//! Sites are either the static probe points in [`sites::ROSTER`] or
//! dynamic per-experiment sites (the artifact cache probes with the
//! experiment id); [`FaultPlan::validate_sites`] checks a plan against
//! the union at arm time so typos fail loudly with the full roster,
//! exactly like an unknown CLI target.
//!
//! Probes are free when nothing is armed: [`probe`] is a single relaxed
//! atomic load on the disarmed path, so shipping code keeps its probes
//! compiled in with no measurable overhead (`BENCH_serve.json` records
//! the warm-path delta). Once armed — [`arm`] or [`arm_from_env`], at
//! most once per process — every rule counts how often it fired, and
//! [`report`] exposes the counts so tests (and `/metrics`) can assert
//! injection coverage rather than trusting it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sites;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// The environment variable [`arm_from_env`] reads the spec from.
pub const ENV_VAR: &str = "ACCELWALL_FAULTS";

/// What an armed rule does when its site is probed within budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an [`InjectedFault`] error on the first `times` hits, then
    /// pass — a transient failure that a retry must recover from.
    Err {
        /// How many probe hits fail before the site heals.
        times: u32,
    },
    /// Panic on the first `times` hits — containment must catch it.
    Panic {
        /// How many probe hits panic before the site heals.
        times: u32,
    },
    /// Sleep for `duration` on the first hit, then pass — a bounded hang
    /// that a compute deadline must cut short.
    Hang {
        /// How long the single hanging hit sleeps.
        duration: Duration,
    },
}

impl FaultKind {
    /// How many probe hits this kind consumes before the site heals.
    pub fn budget(&self) -> u32 {
        match self {
            FaultKind::Err { times } | FaultKind::Panic { times } => *times,
            FaultKind::Hang { .. } => 1,
        }
    }

    /// The kind's spec keyword (`err`, `panic`, `hang`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Err { .. } => "err",
            FaultKind::Panic { .. } => "panic",
            FaultKind::Hang { .. } => "hang",
        }
    }
}

/// One `site:kind:budget` entry of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The injection site this rule targets.
    pub site: String,
    /// What happens when the site is probed within budget.
    pub kind: FaultKind,
}

/// A parsed (not yet armed) fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The rules in spec order; sites are unique.
    pub rules: Vec<FaultRule>,
}

/// Why a spec string (or an arming attempt) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec was empty or contained an empty entry.
    Empty,
    /// An entry was not of the `site:kind:budget` shape.
    Malformed {
        /// The offending entry, verbatim.
        entry: String,
    },
    /// An entry named a kind other than `err`, `panic`, or `hang`.
    UnknownKind {
        /// The offending entry, verbatim.
        entry: String,
        /// The kind keyword that was not recognized.
        kind: String,
    },
    /// An `err`/`panic` budget was not a positive integer.
    BadCount {
        /// The offending entry, verbatim.
        entry: String,
        /// The budget field that failed to parse.
        value: String,
    },
    /// A `hang` duration was not `<n>ms` or `<n>s`.
    BadDuration {
        /// The offending entry, verbatim.
        entry: String,
        /// The duration field that failed to parse.
        value: String,
    },
    /// Two entries targeted the same site.
    DuplicateSite {
        /// The site named more than once.
        site: String,
    },
    /// A rule named a site that is neither static nor known-dynamic.
    UnknownSite {
        /// The site that matched nothing.
        site: String,
        /// Every site the validator would have accepted.
        known: Vec<String>,
    },
    /// [`arm`] was called twice; a process arms at most one plan.
    AlreadyArmed,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty => write!(
                f,
                "empty fault spec; expected comma-separated site:kind:budget entries \
                 like \"fig3b:err:2,table5:hang:500ms\""
            ),
            SpecError::Malformed { entry } => write!(
                f,
                "malformed fault entry {entry:?}; expected site:kind:budget \
                 (e.g. \"fig3b:err:2\", \"fig14:panic:1\", \"table5:hang:500ms\")"
            ),
            SpecError::UnknownKind { entry, kind } => write!(
                f,
                "unknown fault kind {kind:?} in {entry:?}; known kinds: err panic hang"
            ),
            SpecError::BadCount { entry, value } => write!(
                f,
                "fault budget {value:?} in {entry:?} must be a positive integer"
            ),
            SpecError::BadDuration { entry, value } => write!(
                f,
                "hang duration {value:?} in {entry:?} must be <n>ms or <n>s, \
                 integer or fractional (e.g. 500ms, 0.5s)"
            ),
            SpecError::DuplicateSite { site } => {
                write!(f, "site {site:?} appears in more than one fault entry")
            }
            SpecError::UnknownSite { site, known } => {
                write!(f, "unknown fault site {site:?}; known sites: ")?;
                for (i, k) in known.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ")?;
                    }
                    f.write_str(k)?;
                }
                Ok(())
            }
            SpecError::AlreadyArmed => {
                write!(
                    f,
                    "a fault plan is already armed; arm at most once per process"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl FaultPlan {
    /// Parses a comma-separated `site:kind:budget` spec.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] pinpointing the first offending entry.
    pub fn parse(spec: &str) -> Result<FaultPlan, SpecError> {
        if spec.trim().is_empty() {
            return Err(SpecError::Empty);
        }
        let mut rules: Vec<FaultRule> = Vec::new();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                return Err(SpecError::Empty);
            }
            let mut fields = entry.split(':');
            let (site, kind, budget) = match (fields.next(), fields.next(), fields.next()) {
                (Some(s), Some(k), Some(b)) if fields.next().is_none() && !s.is_empty() => {
                    (s.trim(), k.trim(), b.trim())
                }
                _ => {
                    return Err(SpecError::Malformed {
                        entry: entry.to_string(),
                    })
                }
            };
            let kind = match kind {
                "err" => FaultKind::Err {
                    times: parse_count(entry, budget)?,
                },
                "panic" => FaultKind::Panic {
                    times: parse_count(entry, budget)?,
                },
                "hang" => FaultKind::Hang {
                    duration: parse_duration(entry, budget)?,
                },
                other => {
                    return Err(SpecError::UnknownKind {
                        entry: entry.to_string(),
                        kind: other.to_string(),
                    })
                }
            };
            if rules.iter().any(|r| r.site == site) {
                return Err(SpecError::DuplicateSite {
                    site: site.to_string(),
                });
            }
            rules.push(FaultRule {
                site: site.to_string(),
                kind,
            });
        }
        Ok(FaultPlan { rules })
    }

    /// Checks every rule's site against the static roster plus the
    /// caller's dynamic site names (e.g. the registry's experiment ids).
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownSite`] carrying the full accepted-site list,
    /// mirroring the CLI's unknown-target error.
    pub fn validate_sites(&self, dynamic: &[&str]) -> Result<(), SpecError> {
        for rule in &self.rules {
            if !sites::is_static(&rule.site) && !dynamic.contains(&rule.site.as_str()) {
                let known = sites::names()
                    .map(str::to_string)
                    .chain(dynamic.iter().map(|d| (*d).to_string()))
                    .collect();
                return Err(SpecError::UnknownSite {
                    site: rule.site.clone(),
                    known,
                });
            }
        }
        Ok(())
    }

    /// Renders the plan back into its canonical spec string.
    pub fn summary(&self) -> String {
        self.rules
            .iter()
            .map(|r| match &r.kind {
                FaultKind::Err { times } => format!("{}:err:{times}", r.site),
                FaultKind::Panic { times } => format!("{}:panic:{times}", r.site),
                FaultKind::Hang { duration } => {
                    format!("{}:hang:{}ms", r.site, duration.as_millis())
                }
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_count(entry: &str, value: &str) -> Result<u32, SpecError> {
    match value.parse::<u32>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(SpecError::BadCount {
            entry: entry.to_string(),
            value: value.to_string(),
        }),
    }
}

/// Parses a `hang` duration: a non-negative number — integer or
/// fractional, like `500ms`, `2s`, or `0.5s` — followed by its unit.
/// A bare number, a negative value, or anything else (`500`, `fast`,
/// `1.2.3s`) is rejected with the entry pinpointed.
fn parse_duration(entry: &str, value: &str) -> Result<Duration, SpecError> {
    let bad = || SpecError::BadDuration {
        entry: entry.to_string(),
        value: value.to_string(),
    };
    let split = value
        .find(|c: char| !c.is_ascii_digit() && c != '.')
        .ok_or_else(bad)?;
    let (number, unit) = value.split_at(split);
    // `f64::parse` would also take exponents, signs, `inf`, and `nan`;
    // the digits-and-one-dot shape keeps the spec grammar strict.
    if number.is_empty() || number.matches('.').count() > 1 {
        return Err(bad());
    }
    let n: f64 = number.parse().map_err(|_| bad())?;
    let seconds = match unit {
        "ms" => n / 1e3,
        "s" => n,
        _ => return Err(bad()),
    };
    if !seconds.is_finite() {
        return Err(bad());
    }
    Ok(Duration::from_secs_f64(seconds))
}

/// The error an `err`-kind probe returns — a transient, retryable
/// failure with the firing site in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site whose armed rule fired.
    pub site: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected transient fault at site {:?} (armed via {ENV_VAR})",
            self.site
        )
    }
}

impl std::error::Error for InjectedFault {}

/// One armed rule's coverage record, for [`report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The rule's injection site.
    pub site: String,
    /// The kind keyword (`err`, `panic`, `hang`).
    pub kind: &'static str,
    /// The rule's total budget.
    pub budget: u32,
    /// How many probe hits actually fired so far.
    pub fired: u32,
}

/// A [`FaultPlan`] with live per-rule budgets and fired counters.
#[derive(Debug)]
pub struct ArmedPlan {
    rules: Vec<ArmedRule>,
}

#[derive(Debug)]
struct ArmedRule {
    rule: FaultRule,
    remaining: AtomicU32,
    fired: AtomicU32,
}

impl ArmedPlan {
    /// Arms a plan locally (tests drive this directly; production code
    /// arms the process-global plan via [`arm`]).
    pub fn new(plan: FaultPlan) -> ArmedPlan {
        ArmedPlan {
            rules: plan
                .rules
                .into_iter()
                .map(|rule| ArmedRule {
                    remaining: AtomicU32::new(rule.kind.budget()),
                    fired: AtomicU32::new(0),
                    rule,
                })
                .collect(),
        }
    }

    /// Fires the site's rule if one is armed and within budget.
    ///
    /// A `hang` rule sleeps here and then passes; a `panic` rule panics
    /// here (the caller's containment is the thing under test).
    ///
    /// # Errors
    ///
    /// [`InjectedFault`] when an `err` rule fires.
    pub fn probe(&self, site: &str) -> Result<(), InjectedFault> {
        let Some(armed) = self.rules.iter().find(|r| r.rule.site == site) else {
            return Ok(());
        };
        // Claim one unit of budget; losers of the race (or exhausted
        // rules) pass through untouched. AcqRel on the winning claim
        // orders each firing after the previous one; Acquire on failure
        // is enough to observe exhaustion.
        if armed
            .remaining
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
            .is_err()
        {
            return Ok(());
        }
        armed.fired.fetch_add(1, Ordering::Relaxed);
        match &armed.rule.kind {
            FaultKind::Err { .. } => Err(InjectedFault {
                site: site.to_string(),
            }),
            FaultKind::Panic { .. } => {
                // lint:allow(no-panic-paths): panicking is this rule's entire job; containment upstream is the thing under test
                panic!("injected fault: site {site:?} ordered to panic by the armed FaultPlan")
            }
            FaultKind::Hang { duration } => {
                std::thread::sleep(*duration);
                Ok(())
            }
        }
    }

    /// Per-rule coverage: which sites fired, how often, out of what
    /// budget.
    pub fn report(&self) -> Vec<SiteReport> {
        self.rules
            .iter()
            .map(|r| SiteReport {
                site: r.rule.site.clone(),
                kind: r.rule.kind.label(),
                budget: r.rule.kind.budget(),
                fired: r.fired.load(Ordering::Relaxed),
            })
            .collect()
    }
}

static ARMED: OnceLock<ArmedPlan> = OnceLock::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Arms `plan` as the process-global plan; at most one plan per process.
///
/// # Errors
///
/// [`SpecError::AlreadyArmed`] when a plan was armed earlier.
pub fn arm(plan: FaultPlan) -> Result<&'static ArmedPlan, SpecError> {
    let mut fresh = false;
    let armed = ARMED.get_or_init(|| {
        fresh = true;
        ArmedPlan::new(plan)
    });
    if !fresh {
        return Err(SpecError::AlreadyArmed);
    }
    // Relaxed: ACTIVE is only a fast-path gate — the plan itself is
    // published by (and re-read through) the ARMED OnceLock, whose
    // get()/get_or_init() pair carries the acquire/release edge.
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(armed)
}

/// Parses [`ENV_VAR`] and arms the result; `Ok(None)` when unset/empty.
///
/// # Errors
///
/// A [`SpecError`] for an unparsable spec or a second arming.
pub fn arm_from_env() -> Result<Option<&'static ArmedPlan>, SpecError> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => arm(FaultPlan::parse(&spec)?).map(Some),
        _ => Ok(None),
    }
}

/// Whether a plan is armed in this process.
pub fn is_armed() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The process-global injection probe.
///
/// Disarmed (the shipping default) this is one relaxed atomic load —
/// probes stay compiled into hot paths at no measurable cost. Armed, it
/// defers to [`ArmedPlan::probe`].
///
/// # Errors
///
/// [`InjectedFault`] when an armed `err` rule fires at `site`.
pub fn probe(site: &str) -> Result<(), InjectedFault> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    match ARMED.get() {
        Some(plan) => plan.probe(site),
        None => Ok(()),
    }
}

/// The armed plan's coverage report; empty when nothing is armed.
pub fn report() -> Vec<SiteReport> {
    ARMED.get().map_or_else(Vec::new, ArmedPlan::report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_example_spec() {
        let plan = FaultPlan::parse("fig3b:err:2, fig14:panic:1,table5:hang:500ms").unwrap();
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].site, "fig3b");
        assert_eq!(plan.rules[0].kind, FaultKind::Err { times: 2 });
        assert_eq!(plan.rules[1].kind, FaultKind::Panic { times: 1 });
        assert_eq!(
            plan.rules[2].kind,
            FaultKind::Hang {
                duration: Duration::from_millis(500)
            }
        );
        assert_eq!(
            plan.summary(),
            "fig3b:err:2,fig14:panic:1,table5:hang:500ms"
        );
    }

    #[test]
    fn fractional_second_hang_durations_parse() {
        let plan = FaultPlan::parse("work-heartbeat:hang:0.5s").unwrap();
        assert_eq!(
            plan.rules[0].kind,
            FaultKind::Hang {
                duration: Duration::from_millis(500)
            }
        );
        assert_eq!(plan.summary(), "work-heartbeat:hang:500ms");
        let plan = FaultPlan::parse("a:hang:2.5s,b:hang:1.5ms").unwrap();
        assert_eq!(
            plan.rules[0].kind,
            FaultKind::Hang {
                duration: Duration::from_millis(2500)
            }
        );
        assert_eq!(
            plan.rules[1].kind,
            FaultKind::Hang {
                duration: Duration::from_micros(1500)
            }
        );
    }

    #[test]
    fn rejects_malformed_specs_with_precise_errors() {
        assert_eq!(FaultPlan::parse(""), Err(SpecError::Empty));
        assert_eq!(FaultPlan::parse("a:err:1,"), Err(SpecError::Empty));
        assert!(matches!(
            FaultPlan::parse("fig3b:err"),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:err:1:2"),
            Err(SpecError::Malformed { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:explode:1"),
            Err(SpecError::UnknownKind { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:err:0"),
            Err(SpecError::BadCount { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:err:two"),
            Err(SpecError::BadCount { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:hang:500"),
            Err(SpecError::BadDuration { .. })
        ));
        assert!(matches!(
            FaultPlan::parse("fig3b:hang:fast"),
            Err(SpecError::BadDuration { .. })
        ));
        // Fractional durations are accepted, but only in the strict
        // digits-and-one-dot shape: no double dots, bare dots, signs,
        // exponents, or missing units.
        for rejected in [
            "fig3b:hang:1.2.3s",
            "fig3b:hang:.s",
            "fig3b:hang:.ms",
            "fig3b:hang:0.5",
            "fig3b:hang:-1s",
            "fig3b:hang:1e3ms",
        ] {
            assert!(
                matches!(
                    FaultPlan::parse(rejected),
                    Err(SpecError::BadDuration { .. })
                ),
                "{rejected} should be rejected"
            );
        }
        assert_eq!(
            FaultPlan::parse("a:err:1,a:panic:1"),
            Err(SpecError::DuplicateSite { site: "a".into() })
        );
    }

    #[test]
    fn validation_accepts_static_and_dynamic_sites_and_lists_the_roster() {
        let plan = FaultPlan::parse("serve-request:panic:1,fig3b:err:2").unwrap();
        assert!(plan.validate_sites(&["fig3b", "fig14"]).is_ok());
        let plan = FaultPlan::parse("fig99:err:1").unwrap();
        match plan.validate_sites(&["fig3b"]) {
            Err(SpecError::UnknownSite { site, known }) => {
                assert_eq!(site, "fig99");
                assert!(known.contains(&sites::SERVE_REQUEST.to_string()));
                assert!(known.contains(&"fig3b".to_string()));
            }
            other => panic!("expected UnknownSite, got {other:?}"),
        }
    }

    #[test]
    fn err_budget_fails_n_times_then_heals_and_records_coverage() {
        let armed = ArmedPlan::new(FaultPlan::parse("x:err:2").unwrap());
        assert!(armed.probe("x").is_err());
        assert!(armed.probe("x").is_err());
        assert!(armed.probe("x").is_ok(), "budget exhausted, site healed");
        assert!(armed.probe("unrelated").is_ok());
        let report = armed.report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].site, "x");
        assert_eq!(report[0].kind, "err");
        assert_eq!(report[0].budget, 2);
        assert_eq!(report[0].fired, 2);
    }

    #[test]
    fn concurrent_probes_never_overfire_the_budget() {
        let armed = ArmedPlan::new(FaultPlan::parse("x:err:3").unwrap());
        let errors = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..4 {
                        if armed.probe("x").is_err() {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(errors.load(Ordering::SeqCst), 3);
        assert_eq!(armed.report()[0].fired, 3);
    }

    #[test]
    fn panic_rule_panics_exactly_once() {
        let armed = ArmedPlan::new(FaultPlan::parse("x:panic:1").unwrap());
        let result = std::panic::catch_unwind(|| armed.probe("x"));
        assert!(result.is_err(), "first hit panics");
        assert!(armed.probe("x").is_ok(), "budget spent, site healed");
        assert_eq!(armed.report()[0].fired, 1);
    }

    #[test]
    fn hang_rule_sleeps_once_then_passes() {
        let armed = ArmedPlan::new(FaultPlan::parse("x:hang:50ms").unwrap());
        let start = std::time::Instant::now();
        assert!(armed.probe("x").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(50));
        let start = std::time::Instant::now();
        assert!(armed.probe("x").is_ok());
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn disarmed_global_probe_is_a_no_op() {
        // This test must not arm the global plan: sibling tests in this
        // process rely on the disarmed fast path staying silent.
        assert!(!is_armed() || ARMED.get().is_some());
        assert!(probe("never-armed-site").is_ok());
        assert!(report().iter().all(|r| r.site != "never-armed-site"));
    }
}
