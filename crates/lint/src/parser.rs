//! A hand-rolled recursive-descent parser for the item-level subset of
//! Rust the semantic lint rules need.
//!
//! The parser runs over the comment-filtered token view
//! ([`crate::SourceFile::code_tokens`]) and produces the lightweight
//! tree described in [`crate::ast`]. Its grammar is deliberately
//! shallow: it fully classifies *items* (functions, structs, enums,
//! traits, impls, mods, uses, consts, statics, type aliases, macros)
//! and brace-matches their bodies, but leaves expression parsing to the
//! token-scan helpers ([`calls_in`]) that rules apply to body ranges.
//! Generics are skipped by angle-depth counting, attributes by
//! bracket matching; `impl`/`trait`/`mod` bodies are descended into so
//! methods land in the tree.
//!
//! The parser is total in the same spirit as the lexer: a token that
//! fits no production is recorded as a [`ParseError`] recovery and
//! skipped, never an abort. The workspace's own sources must parse with
//! *zero* recoveries — `tests/lint.rs` pins that — so a recovery on real
//! code is a parser bug surfaced loudly, not silently degraded
//! analysis.

use crate::ast::{Call, Field, Item, ItemKind, ParseError, ParsedFile, Span};
use crate::lexer::{Token, TokenKind};

/// Parses the code-token view of one file into an item tree.
pub fn parse(code: &[&Token]) -> ParsedFile {
    let mut parser = Parser {
        code,
        pos: 0,
        recoveries: Vec::new(),
    };
    let items = parser.items(code.len());
    ParsedFile {
        items,
        recoveries: parser.recoveries,
    }
}

fn span_of(t: &Token) -> Span {
    Span {
        line: t.line,
        col: t.col,
    }
}

struct Parser<'a> {
    code: &'a [&'a Token],
    pos: usize,
    recoveries: Vec<ParseError>,
}

impl<'a> Parser<'a> {
    fn at(&self, i: usize) -> Option<&'a Token> {
        self.code.get(i).copied()
    }

    fn peek(&self) -> Option<&'a Token> {
        self.at(self.pos)
    }

    fn peek_is_ident(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(text))
    }

    fn peek_is_punct(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(text))
    }

    /// Parses items until `end` (exclusive) or a closing `}` balancing
    /// the caller's block, which the caller consumes.
    fn items(&mut self, end: usize) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < end {
            if self.peek_is_punct("}") {
                break;
            }
            if self.peek_is_punct(";") {
                self.pos += 1;
                continue;
            }
            self.skip_attributes(end);
            if self.pos >= end || self.peek_is_punct("}") {
                break;
            }
            match self.item(end) {
                Some(item) => items.push(item),
                None => {
                    // Recovery: note the token and move past it.
                    if let Some(t) = self.peek() {
                        self.recoveries.push(ParseError {
                            span: span_of(t),
                            message: format!("unexpected token {:?} at item position", t.text),
                        });
                    }
                    self.pos += 1;
                }
            }
        }
        items
    }

    /// Skips any run of outer `#[...]` and inner `#![...]` attributes.
    fn skip_attributes(&mut self, end: usize) {
        while self.pos < end && self.peek_is_punct("#") {
            let mut i = self.pos + 1;
            if self.at(i).is_some_and(|t| t.is_punct("!")) {
                i += 1;
            }
            if !self.at(i).is_some_and(|t| t.is_punct("[")) {
                return; // a stray `#`; let item() report it
            }
            self.pos = self.match_delim(i, "[", "]") + 1;
        }
    }

    /// Parses one item starting at `self.pos`, or returns `None` if the
    /// current token opens no known production (the caller records the
    /// recovery).
    fn item(&mut self, end: usize) -> Option<Item> {
        // Modifier prefix: visibility and qualifiers.
        loop {
            if self.peek_is_ident("pub") {
                self.pos += 1;
                if self.peek_is_punct("(") {
                    self.pos = self.match_delim(self.pos, "(", ")") + 1;
                }
            } else if self.peek_is_ident("unsafe")
                || self.peek_is_ident("async")
                || (self.peek_is_ident("default")
                    && self
                        .at(self.pos + 1)
                        .is_some_and(|t| t.is_ident("fn") || t.is_ident("unsafe")))
                || (self.peek_is_ident("const")
                    && self.at(self.pos + 1).is_some_and(|t| t.is_ident("fn")))
            {
                self.pos += 1;
            } else if self.peek_is_ident("extern")
                && self
                    .at(self.pos + 1)
                    .is_some_and(|t| t.kind == TokenKind::Str)
                && self.at(self.pos + 2).is_some_and(|t| t.is_ident("fn"))
            {
                self.pos += 2;
            } else {
                break;
            }
        }
        let t = self.peek()?;
        let span = span_of(t);
        if t.is_ident("fn") {
            Some(self.fn_item(span))
        } else if t.is_ident("struct") {
            Some(self.struct_item(span))
        } else if t.is_ident("enum") || t.is_ident("union") {
            Some(self.enum_item(span))
        } else if t.is_ident("trait") {
            Some(self.trait_item(span, end))
        } else if t.is_ident("impl") {
            Some(self.impl_item(span, end))
        } else if t.is_ident("mod") {
            Some(self.mod_item(span, end))
        } else if t.is_ident("use") {
            Some(self.use_item(span))
        } else if t.is_ident("const") || t.is_ident("static") {
            Some(self.const_item(span))
        } else if t.is_ident("type") {
            Some(self.type_item(span))
        } else if t.is_ident("macro_rules") {
            Some(self.macro_rules_item(span))
        } else if t.is_ident("extern") {
            Some(self.extern_item(span))
        } else if t.kind == TokenKind::Ident && self.macro_invocation_ahead() {
            Some(self.macro_invocation_item(span))
        } else {
            None
        }
    }

    /// Whether `pos` starts `path::to::mac! ( … )` — an item-level
    /// macro invocation.
    fn macro_invocation_ahead(&self) -> bool {
        let mut i = self.pos;
        while self.at(i).is_some_and(|t| t.kind == TokenKind::Ident)
            && self.at(i + 1).is_some_and(|t| t.is_punct("::"))
        {
            i += 2;
        }
        self.at(i).is_some_and(|t| t.kind == TokenKind::Ident)
            && self.at(i + 1).is_some_and(|t| t.is_punct("!"))
    }

    /// `fn name<generics>(params) -> ret where … { body }` — the body
    /// is brace-matched, not parsed; trait signatures end at `;`.
    fn fn_item(&mut self, span: Span) -> Item {
        self.pos += 1; // `fn`
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Fn, name, span);
        if self.peek_is_punct("<") {
            self.pos = self.skip_generics(self.pos) + 1;
        }
        if self.peek_is_punct("(") {
            let open = self.pos;
            let close = self.match_delim(open, "(", ")");
            item.fields = self.params(open + 1, close);
            self.pos = close + 1;
        }
        match self.seek_body_or_semi() {
            Some((open, close)) => {
                item.body = Some((open, close));
                self.pos = close + 1;
            }
            None => self.pos += 1, // the `;`
        }
        item
    }

    /// `struct Name<T> { fields }` | `struct Name(T);` | `struct Name;`
    fn struct_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Struct, name, span);
        if self.peek_is_punct("<") {
            self.pos = self.skip_generics(self.pos) + 1;
        }
        if self.peek_is_punct("(") {
            // Tuple struct: skip the fields, then the trailing `;`
            // (possibly behind a where clause).
            self.pos = self.match_delim(self.pos, "(", ")") + 1;
            self.skip_to_semi();
            return item;
        }
        // Optional where clause, then either `;` or a field block.
        while self.pos < self.code.len() {
            if self.peek_is_punct(";") {
                self.pos += 1;
                return item;
            }
            if self.peek_is_punct("{") {
                let open = self.pos;
                let close = self.match_delim(open, "{", "}");
                item.fields = self.struct_fields(open + 1, close);
                self.pos = close + 1;
                return item;
            }
            self.pos += 1;
        }
        item
    }

    /// `enum`/`union`: name recorded, body skipped wholesale.
    fn enum_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Enum, name, span);
        match self.seek_body_or_semi() {
            Some((open, close)) => {
                item.body = Some((open, close));
                self.pos = close + 1;
            }
            None => self.pos += 1,
        }
        item
    }

    /// `trait Name: Bounds { members }` — members are parsed so default
    /// method bodies land in the tree.
    fn trait_item(&mut self, span: Span, end: usize) -> Item {
        self.pos += 1;
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Trait, name, span);
        while self.pos < end && !self.peek_is_punct("{") && !self.peek_is_punct(";") {
            self.pos += 1;
        }
        if self.peek_is_punct("{") {
            let open = self.pos;
            let close = self.match_delim(open, "{", "}");
            self.pos = open + 1;
            item.children = self.items(close);
            self.pos = close + 1;
        } else {
            self.pos += 1; // trait alias `;`
        }
        item
    }

    /// `impl<G> Trait for Type where … { members }` — the self type's
    /// head identifier becomes the item name.
    fn impl_item(&mut self, span: Span, end: usize) -> Item {
        self.pos += 1;
        if self.peek_is_punct("<") {
            self.pos = self.skip_generics(self.pos) + 1;
        }
        let mut first_path_name = String::new();
        let mut name = String::new();
        let mut trait_name = None;
        let mut angle = 0usize;
        while self.pos < end {
            let Some(t) = self.peek() else { break };
            if angle == 0 && (t.is_punct("{") || t.is_ident("where")) {
                break;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle = angle.saturating_sub(1);
            } else if angle == 0 && t.is_ident("for") {
                trait_name = Some(std::mem::take(&mut first_path_name));
                name.clear();
            } else if angle == 0 && t.kind == TokenKind::Ident && !t.is_ident("dyn") {
                if first_path_name.is_empty() && trait_name.is_none() {
                    first_path_name.clone_from(&t.text);
                }
                name.clone_from(&t.text);
            }
            self.pos += 1;
        }
        let mut item = Item::new(ItemKind::Impl, name, span);
        item.trait_name = trait_name.filter(|n| !n.is_empty());
        while self.pos < end && !self.peek_is_punct("{") {
            self.pos += 1; // where clause
        }
        if self.peek_is_punct("{") {
            let open = self.pos;
            let close = self.match_delim(open, "{", "}");
            self.pos = open + 1;
            item.children = self.items(close);
            self.pos = close + 1;
        }
        item
    }

    /// `mod name;` | `mod name { items }`
    fn mod_item(&mut self, span: Span, end: usize) -> Item {
        self.pos += 1;
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Mod, name, span);
        if self.peek_is_punct("{") {
            let open = self.pos;
            let close = self.match_delim(open, "{", "}");
            self.pos = open + 1;
            item.children = self.items(close);
            self.pos = close + 1;
        } else if self.pos < end {
            self.pos += 1; // `;`
        }
        item
    }

    /// `use path::{a, b as c};` — the whole path (space-joined) is the
    /// item name; [`use_leaves`] expands it on demand.
    fn use_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        let mut text = String::new();
        while self.pos < self.code.len() && !self.peek_is_punct(";") {
            if let Some(t) = self.peek() {
                if !text.is_empty() {
                    text.push(' ');
                }
                text.push_str(&t.text);
            }
            self.pos += 1;
        }
        self.pos += 1; // `;`
        Item::new(ItemKind::Use, text, span)
    }

    /// `const NAME: Ty = expr;` | `static NAME: Ty = expr;` — the type
    /// text is kept in `fields[0]` for the symbol index.
    fn const_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        if self.peek_is_ident("mut") {
            self.pos += 1;
        }
        let name = self.take_name();
        let mut item = Item::new(ItemKind::Const, name.clone(), span);
        if self.peek_is_punct(":") {
            let ty_start = self.pos + 1;
            let ty_end = self.seek_eq_or_semi(ty_start);
            item.fields.push(Field {
                name,
                ty: self.join(ty_start, ty_end),
                span,
            });
            self.pos = ty_end;
        }
        self.skip_to_semi();
        item
    }

    /// `type Alias = Ty;` (or a bodyless associated `type Item;`).
    fn type_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        let name = self.take_name();
        self.skip_to_semi();
        Item::new(ItemKind::TypeAlias, name, span)
    }

    /// `macro_rules! name { … }` (or `(...)`/`[...]` + `;`).
    fn macro_rules_item(&mut self, span: Span) -> Item {
        self.pos += 2; // `macro_rules` `!`
        let name = self.take_name();
        self.skip_macro_body();
        Item::new(ItemKind::Macro, name, span)
    }

    /// `extern crate name;` | `extern "abi" { … }`
    fn extern_item(&mut self, span: Span) -> Item {
        self.pos += 1;
        if self.peek_is_ident("crate") {
            self.pos += 1;
            let name = self.take_name();
            self.skip_to_semi();
            return Item::new(ItemKind::Extern, name, span);
        }
        if self.peek().is_some_and(|t| t.kind == TokenKind::Str) {
            self.pos += 1;
        }
        if self.peek_is_punct("{") {
            self.pos = self.match_delim(self.pos, "{", "}") + 1;
        }
        Item::new(ItemKind::Extern, String::new(), span)
    }

    /// `path::to::mac! { … }` or `mac!(…);` at item level
    /// (`thread_local!`, `criterion_group!`, …).
    fn macro_invocation_item(&mut self, span: Span) -> Item {
        let mut name = String::new();
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Ident {
                name.clone_from(&t.text);
                self.pos += 1;
                if self.peek_is_punct("::") {
                    self.pos += 1;
                    continue;
                }
            }
            break;
        }
        if self.peek_is_punct("!") {
            self.pos += 1;
        }
        self.skip_macro_body();
        Item::new(ItemKind::Macro, name, span)
    }

    /// Skips a macro's delimited body: `{…}` stands alone, `(...)` and
    /// `[...]` take a trailing `;`.
    fn skip_macro_body(&mut self) {
        if self.peek_is_punct("{") {
            self.pos = self.match_delim(self.pos, "{", "}") + 1;
        } else if self.peek_is_punct("(") {
            self.pos = self.match_delim(self.pos, "(", ")") + 1;
            self.skip_to_semi();
        } else if self.peek_is_punct("[") {
            self.pos = self.match_delim(self.pos, "[", "]") + 1;
            self.skip_to_semi();
        }
    }

    /// Consumes and returns an identifier (or `_`), empty on mismatch.
    fn take_name(&mut self) -> String {
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident || t.is_punct("_") => {
                self.pos += 1;
                t.text.clone()
            }
            _ => String::new(),
        }
    }

    /// From an opening delimiter at `open`, the index of its match
    /// (or the last token, for unbalanced input).
    fn match_delim(&self, open: usize, od: &str, cd: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.code.len() {
            let t = self.code[i];
            if t.is_punct(od) {
                depth += 1;
            } else if t.is_punct(cd) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// From a `<` at `from`, the index of the matching `>`, counting
    /// angles only outside nested bracket groups.
    fn skip_generics(&self, from: usize) -> usize {
        let mut angle = 0usize;
        let mut nest = 0usize;
        let mut i = from;
        while i < self.code.len() {
            let t = self.code[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                nest += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                nest = nest.saturating_sub(1);
            } else if nest == 0 && t.is_punct("<") {
                angle += 1;
            } else if nest == 0 && t.is_punct(">") {
                angle -= 1;
                if angle == 0 {
                    return i;
                }
            }
            i += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Scans forward for the item's `{` body (at bracket depth 0) or a
    /// terminating `;`; returns the matched body range or `None` for
    /// `;`. Leaves `self.pos` on the found token.
    fn seek_body_or_semi(&mut self) -> Option<(usize, usize)> {
        let mut nest = 0usize;
        while self.pos < self.code.len() {
            let t = self.code[self.pos];
            if t.is_punct("(") || t.is_punct("[") {
                nest += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                nest = nest.saturating_sub(1);
            } else if nest == 0 && t.is_punct(";") {
                return None;
            } else if nest == 0 && t.is_punct("{") {
                let close = self.match_delim(self.pos, "{", "}");
                return Some((self.pos, close));
            }
            self.pos += 1;
        }
        None
    }

    /// Advances past the next `;` at bracket depth 0 (expression
    /// braces, arrays, and parens all nest).
    fn skip_to_semi(&mut self) {
        let mut nest = 0usize;
        while self.pos < self.code.len() {
            let t = self.code[self.pos];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                nest += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                nest = nest.saturating_sub(1);
            } else if nest == 0 && t.is_punct(";") {
                self.pos += 1;
                return;
            }
            self.pos += 1;
        }
    }

    /// The index of the `=` or `;` ending a const/static's type, at
    /// bracket and angle depth 0.
    fn seek_eq_or_semi(&self, from: usize) -> usize {
        let mut nest = 0usize;
        let mut angle = 0usize;
        let mut i = from;
        while i < self.code.len() {
            let t = self.code[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                nest += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                nest = nest.saturating_sub(1);
            } else if nest == 0 && t.is_punct("<") {
                angle += 1;
            } else if nest == 0 && t.is_punct(">") {
                angle = angle.saturating_sub(1);
            } else if nest == 0 && angle == 0 && (t.is_punct("=") || t.is_punct(";")) {
                return i;
            }
            i += 1;
        }
        self.code.len()
    }

    /// Space-joined token text over `[start, end)`.
    fn join(&self, start: usize, end: usize) -> String {
        let mut s = String::new();
        for t in &self.code[start.min(self.code.len())..end.min(self.code.len())] {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(&t.text);
        }
        s
    }

    /// Struct fields between a brace pair: `[pub] name: Type,`*.
    fn struct_fields(&mut self, start: usize, end: usize) -> Vec<Field> {
        let mut fields = Vec::new();
        let mut i = start;
        while i < end {
            // Skip attributes and visibility.
            while i < end && self.at(i).is_some_and(|t| t.is_punct("#")) {
                let mut j = i + 1;
                if self.at(j).is_some_and(|t| t.is_punct("!")) {
                    j += 1;
                }
                if self.at(j).is_some_and(|t| t.is_punct("[")) {
                    i = self.match_delim(j, "[", "]") + 1;
                } else {
                    i += 1;
                }
            }
            if self.at(i).is_some_and(|t| t.is_ident("pub")) {
                i += 1;
                if self.at(i).is_some_and(|t| t.is_punct("(")) {
                    i = self.match_delim(i, "(", ")") + 1;
                }
            }
            let Some(name_tok) = self.at(i).filter(|t| t.kind == TokenKind::Ident) else {
                break;
            };
            if !self.at(i + 1).is_some_and(|t| t.is_punct(":")) {
                break;
            }
            let ty_start = i + 2;
            let ty_end = self.field_type_end(ty_start, end);
            fields.push(Field {
                name: name_tok.text.clone(),
                ty: self.join(ty_start, ty_end),
                span: span_of(name_tok),
            });
            i = ty_end + 1; // past the comma (or the close brace)
        }
        fields
    }

    /// The index of the `,` ending a field's type (angle- and
    /// bracket-aware), or `end`.
    fn field_type_end(&self, from: usize, end: usize) -> usize {
        let mut nest = 0usize;
        let mut angle = 0usize;
        let mut i = from;
        while i < end {
            let t = self.code[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                nest += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                nest = nest.saturating_sub(1);
            } else if nest == 0 && t.is_punct("<") {
                angle += 1;
            } else if nest == 0 && t.is_punct(">") {
                angle = angle.saturating_sub(1);
            } else if nest == 0 && angle == 0 && t.is_punct(",") {
                return i;
            }
            i += 1;
        }
        end
    }

    /// Fn parameters between the signature parens: top-level commas
    /// split bindings; `[&] [mut] name: Type` yields a [`Field`],
    /// `self` receivers and pattern bindings are skipped.
    fn params(&mut self, start: usize, end: usize) -> Vec<Field> {
        let mut params = Vec::new();
        let mut i = start;
        while i < end {
            let piece_end = self.field_type_end(i, end);
            // Find the top-level `:` separating pattern from type.
            let mut colon = None;
            let mut nest = 0usize;
            for j in i..piece_end {
                let t = self.code[j];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    nest += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    nest = nest.saturating_sub(1);
                } else if nest == 0 && t.is_punct(":") {
                    colon = Some(j);
                    break;
                }
            }
            if let Some(c) = colon {
                // The binding name is the last plain ident before `:`.
                let name_tok = (i..c).rev().map(|j| self.code[j]).find(|t| {
                    t.kind == TokenKind::Ident && !t.is_ident("mut") && !t.is_ident("ref")
                });
                if let Some(name_tok) = name_tok {
                    params.push(Field {
                        name: name_tok.text.clone(),
                        ty: self.join(c + 1, piece_end),
                        span: span_of(name_tok),
                    });
                }
            }
            i = piece_end + 1;
        }
        params
    }
}

/// Extracts every call site in `[start, end)` of the code-token view:
/// method calls with their receiver chains and path/bare calls, each
/// with top-level-comma-split argument ranges.
pub fn calls_in(code: &[&Token], start: usize, end: usize) -> Vec<Call> {
    let end = end.min(code.len());
    let mut calls = Vec::new();
    let mut i = start;
    while i < end {
        let t = code[i];
        if t.kind == TokenKind::Ident {
            // The `(` may sit behind a turbofish: `channel::<u32>(...)`.
            let mut open = i + 1;
            if code.get(open).is_some_and(|n| n.is_punct("::"))
                && code.get(open + 1).is_some_and(|n| n.is_punct("<"))
            {
                open = angle_close(code, open + 1) + 1;
            }
            // Exclude declarations/keywords that look like calls.
            if code.get(open).is_some_and(|n| n.is_punct("("))
                && !matches!(
                    t.text.as_str(),
                    "fn" | "if" | "while" | "for" | "match" | "return" | "in"
                )
            {
                let close = match_close(code, open, "(", ")");
                let (chain, is_method) = receiver_chain(code, i);
                calls.push(Call {
                    chain,
                    method: t.text.clone(),
                    is_method,
                    open,
                    close,
                    args: split_args(code, open, close),
                    span: Span {
                        line: t.line,
                        col: t.col,
                    },
                });
            }
        }
        i += 1;
    }
    calls
}

/// From a `<` at `from`, the index of its matching `>` (bracket groups
/// inside the angles nest).
fn angle_close(code: &[&Token], from: usize) -> usize {
    let mut angle = 0usize;
    let mut nest = 0usize;
    let mut i = from;
    while i < code.len() {
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            nest = nest.saturating_sub(1);
        } else if nest == 0 && t.is_punct("<") {
            angle += 1;
        } else if nest == 0 && t.is_punct(">") {
            angle -= 1;
            if angle == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

fn match_close(code: &[&Token], open: usize, od: &str, cd: &str) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < code.len() {
        if code[i].is_punct(od) {
            depth += 1;
        } else if code[i].is_punct(cd) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

fn match_open(code: &[&Token], close: usize, od: &str, cd: &str) -> usize {
    let mut depth = 0usize;
    let mut i = close;
    loop {
        if code[i].is_punct(cd) {
            depth += 1;
        } else if code[i].is_punct(od) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        if i == 0 {
            return 0;
        }
        i -= 1;
    }
}

/// Walks the postfix chain backwards from the called name at `name_at`:
/// `self.shared.queue.lock(...)` → (`["self","shared","queue"]`, true);
/// `mpsc::channel(...)` → (`["mpsc"]`, false).
fn receiver_chain(code: &[&Token], name_at: usize) -> (Vec<String>, bool) {
    let mut chain = Vec::new();
    let Some(prev) = name_at.checked_sub(1) else {
        return (chain, false);
    };
    let is_method = code[prev].is_punct(".");
    if !is_method && !code[prev].is_punct("::") {
        return (chain, false);
    }
    let mut i = prev;
    // `i` sits on the `.` or `::` before the segment we just took.
    while let Some(mut j) = i.checked_sub(1) {
        // Skip a trailing `?` on the previous segment's value.
        if code[j].is_punct("?") {
            let Some(k) = j.checked_sub(1) else { break };
            j = k;
        }
        let seg = code[j];
        if seg.kind == TokenKind::Ident || seg.kind == TokenKind::Int || seg.is_ident("self") {
            chain.push(seg.text.clone());
            i = match j.checked_sub(1) {
                Some(k) if code[k].is_punct(".") || code[k].is_punct("::") => k,
                _ => break,
            };
        } else if seg.is_punct(")") || seg.is_punct("]") {
            let (od, cd) = if seg.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let open = match_open(code, j, od, cd);
            let Some(before) = open.checked_sub(1) else {
                break;
            };
            if code[before].kind == TokenKind::Ident {
                chain.push(format!(
                    "{}{}",
                    code[before].text,
                    if od == "(" { "()" } else { "[]" }
                ));
                i = match before.checked_sub(1) {
                    Some(k) if code[k].is_punct(".") || code[k].is_punct("::") => k,
                    _ => break,
                };
            } else {
                break;
            }
        } else {
            break;
        }
    }
    chain.reverse();
    (chain, is_method)
}

/// Splits `(open, close)` into top-level argument ranges: commas inside
/// nested brackets or between closure pipes do not split.
fn split_args(code: &[&Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut nest = 0usize;
    let mut in_pipes = false;
    let mut arg_start = open + 1;
    let mut i = open + 1;
    while i < close {
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            nest = nest.saturating_sub(1);
        } else if nest == 0 && t.is_punct("|") {
            in_pipes = !in_pipes;
        } else if nest == 0 && !in_pipes && t.is_punct(",") {
            args.push((arg_start, i));
            arg_start = i + 1;
        }
        i += 1;
    }
    if arg_start < close {
        args.push((arg_start, close));
    }
    args
}

/// Expands a `use` item's space-joined path text into
/// `(leaf-name, full-path)` pairs: `std :: sync :: mpsc :: { channel ,
/// Sender as Tx }` yields `("channel", "std::sync::mpsc::channel")` and
/// `("Tx", "std::sync::mpsc::Sender")`. Globs contribute nothing.
pub fn use_leaves(path_text: &str) -> Vec<(String, String)> {
    fn expand(base: &str, segment: &str, out: &mut Vec<(String, String)>) {
        let segment = segment.trim();
        if segment.is_empty() || segment == "*" {
            return;
        }
        if let Some(brace_at) = segment.find('{') {
            let prefix = segment[..brace_at].trim().trim_end_matches("::").trim();
            let inner = segment[brace_at + 1..]
                .rsplit_once('}')
                .map_or("", |(inner, _)| inner);
            let joined = join_path(base, prefix);
            // Split the group at depth-0 commas (groups can nest).
            let mut depth = 0usize;
            let mut piece_start = 0usize;
            let bytes: Vec<char> = inner.chars().collect();
            for (i, c) in bytes.iter().enumerate() {
                match c {
                    '{' => depth += 1,
                    '}' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => {
                        let piece: String = bytes[piece_start..i].iter().collect();
                        expand(&joined, &piece, out);
                        piece_start = i + 1;
                    }
                    _ => {}
                }
            }
            let piece: String = bytes[piece_start..].iter().collect();
            expand(&joined, &piece, out);
            return;
        }
        let (path_part, alias) = match segment.split_once(" as ") {
            Some((p, a)) => (p.trim(), Some(a.trim())),
            None => (segment, None),
        };
        let full = join_path(base, path_part);
        let leaf = alias.map_or_else(
            || full.rsplit("::").next().unwrap_or(&full).to_string(),
            str::to_string,
        );
        if !leaf.is_empty() && leaf != "*" {
            out.push((leaf, full));
        }
    }

    fn join_path(base: &str, rest: &str) -> String {
        let rest = rest.split_whitespace().collect::<Vec<_>>().join("");
        if base.is_empty() {
            rest
        } else if rest.is_empty() {
            base.to_string()
        } else {
            format!("{base}::{rest}")
        }
    }

    let mut out = Vec::new();
    expand("", path_text, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parsed(src: &str) -> ParsedFile {
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        parse(&code)
    }

    #[test]
    fn items_classify_and_nest() {
        let src = "\
            //! module docs\n\
            use std::sync::{Arc, Mutex};\n\
            pub const LIMIT: usize = 8;\n\
            static NAME: &str = \"x\";\n\
            pub struct Pool<T> { pub queue: Mutex<Vec<T>>, cap: usize }\n\
            enum State { A, B { n: u32 } }\n\
            pub trait Job { fn run(&self); fn label(&self) -> &str { \"j\" } }\n\
            impl<T: Send> Pool<T> {\n\
                pub fn new(cap: usize) -> Pool<T> { todo!() }\n\
            }\n\
            impl<T> Drop for Pool<T> { fn drop(&mut self) {} }\n\
            mod inner { pub fn helper() {} }\n\
            fn main() { let _ = 1; }\n";
        let p = parsed(src);
        assert!(p.recoveries.is_empty(), "{:?}", p.recoveries);
        let kinds: Vec<(ItemKind, &str)> =
            p.items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(kinds[0].0, ItemKind::Use);
        assert_eq!(kinds[1], (ItemKind::Const, "LIMIT"));
        assert_eq!(kinds[2], (ItemKind::Const, "NAME"));
        assert_eq!(kinds[3], (ItemKind::Struct, "Pool"));
        assert_eq!(kinds[4], (ItemKind::Enum, "State"));
        assert_eq!(kinds[5], (ItemKind::Trait, "Job"));
        assert_eq!(kinds[6], (ItemKind::Impl, "Pool"));
        assert_eq!(kinds[7], (ItemKind::Impl, "Pool"));
        assert_eq!(kinds[8], (ItemKind::Mod, "inner"));
        assert_eq!(kinds[9], (ItemKind::Fn, "main"));

        let pool = &p.items[3];
        assert_eq!(pool.fields.len(), 2);
        assert_eq!(pool.fields[0].name, "queue");
        assert!(pool.fields[0].ty.contains("Mutex"));

        let job = &p.items[5];
        assert_eq!(job.children.len(), 2);
        assert!(job.children[0].body.is_none(), "signature has no body");
        assert!(job.children[1].body.is_some(), "default body parsed");

        let imp = &p.items[7];
        assert_eq!(imp.trait_name.as_deref(), Some("Drop"));
        assert_eq!(imp.children[0].name, "drop");

        assert_eq!(p.fns_with_bodies().len(), 5);
    }

    #[test]
    fn fn_params_carry_names_and_types() {
        let p = parsed("fn f(n: usize, map: &mut HashMap<String, f64>) {}\n");
        let f = &p.items[0];
        assert_eq!(f.fields.len(), 2);
        assert_eq!(f.fields[1].name, "map");
        assert!(f.fields[1].ty.contains("HashMap"));
    }

    #[test]
    fn macros_and_attributes_parse_clean() {
        let src = "\
            #![allow(dead_code)]\n\
            #[derive(Debug)]\n\
            struct S;\n\
            macro_rules! out { ($($t:tt)*) => { print!($($t)*) }; }\n\
            thread_local! { static TL: u32 = 0; }\n\
            my::path::mac!(a, b);\n";
        let p = parsed(src);
        assert!(p.recoveries.is_empty(), "{:?}", p.recoveries);
        assert_eq!(p.items.len(), 4);
        assert_eq!(p.items[1].name, "out");
        assert_eq!(p.items[3].kind, ItemKind::Macro);
    }

    #[test]
    fn recovery_skips_but_records() {
        let p = parsed("@ fn ok() {}\n");
        assert_eq!(p.recoveries.len(), 1);
        assert_eq!(p.items.len(), 1);
        assert_eq!(p.items[0].name, "ok");
    }

    #[test]
    fn calls_extract_chains_and_args() {
        let src = "fn f() {\n\
            self.shared.queue.lock();\n\
            mpsc::channel::<u32>();\n\
            a.compare_exchange(c, n, Ordering::AcqRel, Ordering::Acquire);\n\
            v.sort_by(|a, b| a.total_cmp(b));\n\
            pool().wake.notify_all();\n\
        }\n";
        let tokens = tokenize(src);
        let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
        let p = parse(&code);
        let (open, close) = p.items[0].body.unwrap();
        let calls = calls_in(&code, open, close);
        let lock = calls.iter().find(|c| c.method == "lock").unwrap();
        assert_eq!(lock.chain, ["self", "shared", "queue"]);
        assert!(lock.is_method);
        assert!(lock.args.is_empty());
        let chan = calls.iter().find(|c| c.method == "channel").unwrap();
        assert_eq!(chan.chain, ["mpsc"]);
        assert!(!chan.is_method);
        let cas = calls
            .iter()
            .find(|c| c.method == "compare_exchange")
            .unwrap();
        assert_eq!(cas.args.len(), 4);
        let sort = calls.iter().find(|c| c.method == "sort_by").unwrap();
        assert_eq!(sort.args.len(), 1, "closure commas must not split");
        let notify = calls.iter().find(|c| c.method == "notify_all").unwrap();
        assert_eq!(notify.chain, ["pool()", "wake"]);
    }

    #[test]
    fn use_leaves_expand_groups_and_aliases() {
        let leaves = use_leaves("std :: sync :: mpsc :: { channel , Sender as Tx }");
        assert!(leaves.contains(&("channel".into(), "std::sync::mpsc::channel".into())));
        assert!(leaves.contains(&("Tx".into(), "std::sync::mpsc::Sender".into())));
        let plain = use_leaves("crate :: lexer :: tokenize");
        assert_eq!(
            plain,
            [("tokenize".into(), "crate::lexer::tokenize".into())]
        );
        assert!(use_leaves("std :: collections :: *").is_empty());
    }
}
