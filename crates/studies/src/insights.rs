//! Section IV-E, executable: the paper's four cross-study observations,
//! each recomputed from the datasets and checked to hold.
//!
//! 1. **Maturity flattens specialization returns** — mature domains'
//!    best chips gain no CSR; the emerging CNN domain still climbs.
//! 2. **Platform transitions are non-recurring boosts** — the CPU → GPU →
//!    FPGA → ASIC jumps each multiply CSR once; within a platform CSR
//!    crawls.
//! 3. **Confined computations exhaust quickly** — Bitcoin's fixed SHA-256
//!    admits only brute-force parallelism (plus the one-time ~20%
//!    ASICBoost trick).
//! 4. **Specialized chips still ride transistors** — in every study the
//!    physical layer contributes the majority of the log-space gain.

use crate::{bitcoin, fpga, gpu, video, Result};

/// The one-time CSR improvement ASICBoost delivered by parallelizing the
/// inner and outer loops of the mining algorithm (Hanke 2016; §IV-E).
pub const ASICBOOST_FACTOR: f64 = 1.2;

/// One §IV-E observation, with the numbers that support it.
#[derive(Debug, Clone, PartialEq)]
pub struct Insight {
    /// Short name.
    pub title: &'static str,
    /// The paper's claim.
    pub claim: &'static str,
    /// `(label, value)` evidence recomputed from the datasets.
    pub evidence: Vec<(String, f64)>,
    /// Whether the claim holds on our reproduction.
    pub holds: bool,
}

/// Recomputes all four §IV-E insights.
///
/// # Errors
///
/// Propagates study errors (impossible on the embedded datasets).
pub fn section4e_insights() -> Result<Vec<Insight>> {
    Ok(vec![
        maturity_insight()?,
        platform_insight()?,
        confined_insight()?,
        transistor_insight()?,
    ])
}

fn maturity_insight() -> Result<Insight> {
    let video = video::performance_series()?;
    let cnn = fpga::performance_series(fpga::CnnModel::AlexNet)?;
    let mut gpu_best_csr: f64 = 0.0;
    for game in gpu::fig5_games() {
        gpu_best_csr = gpu_best_csr.max(gpu::performance_series(&game)?.csr_of_best_chip());
    }
    let evidence = vec![
        ("video best-chip CSR".to_string(), video.csr_of_best_chip()),
        (
            "GPU best-chip CSR (max over games)".to_string(),
            gpu_best_csr,
        ),
        ("CNN peak CSR".to_string(), cnn.peak_csr()),
    ];
    let holds = video.csr_of_best_chip() <= 1.0 && gpu_best_csr < 1.7 && cnn.peak_csr() > 2.5;
    Ok(Insight {
        title: "Specialization returns and computation maturity",
        claim: "mature domains' returns plateau or drop for high-performing chips; \
                emerging domains (CNNs) still improve CSR",
        evidence,
        holds,
    })
}

fn platform_insight() -> Result<Insight> {
    let s = bitcoin::fig9_performance_series()?;
    let csr_of = |needle: &str| {
        s.rows
            .iter()
            .find(|r| r.label.contains(needle))
            .map_or(f64::NAN, |r| r.csr)
    };
    let cpu = csr_of("i7-950");
    let gpu = csr_of("5870");
    let fpga = csr_of("LX150");
    let asic_first = csr_of("BE100");
    let asic_last = csr_of("S9");
    let evidence = vec![
        ("CPU CSR".to_string(), cpu),
        ("GPU CSR".to_string(), gpu),
        ("FPGA CSR".to_string(), fpga),
        ("first-ASIC CSR".to_string(), asic_first),
        ("last-ASIC CSR".to_string(), asic_last),
        ("within-ASIC CSR growth".to_string(), asic_last / asic_first),
    ];
    // Each platform jump multiplies CSR by >2x; six generations of ASICs
    // manage barely 2x among themselves.
    let holds = gpu > 2.0 * cpu && asic_first > 2.0 * fpga && asic_last / asic_first < 3.0;
    Ok(Insight {
        title: "New platforms deliver a non-recurring boost",
        claim: "most CSR gains came from platform transitions; after each, CSR \
                stopped improving significantly",
        evidence,
        holds,
    })
}

fn confined_insight() -> Result<Insight> {
    let asics = bitcoin::fig1_series()?;
    // lint:allow(no-panic-paths): fig1_series() validates its rows and never returns an empty series
    let final_csr = asics.rows.last().expect("non-empty").csr;
    let evidence = vec![
        ("ASIC-era CSR (total)".to_string(), final_csr),
        ("ASICBoost one-time factor".to_string(), ASICBOOST_FACTOR),
        (
            "CSR excluding ASICBoost-scale tricks".to_string(),
            final_csr / ASICBOOST_FACTOR,
        ),
    ];
    // Four years of mining ASICs produced less CSR than two ASICBoost-size
    // algorithmic ideas would: the domain is confined.
    let holds = final_csr < ASICBOOST_FACTOR.powi(4);
    Ok(Insight {
        title: "Confined computations",
        claim: "a fixed core algorithm (SHA-256) leaves only a bounded number of \
                hardware representations; CSR growth collapses to one-time tricks",
        evidence,
        holds,
    })
}

fn transistor_insight() -> Result<Insight> {
    let mut evidence = Vec::new();
    let mut holds = true;
    let share = |reported: f64, physical: f64| physical.ln() / reported.ln();
    let video = video::performance_series()?;
    let best = |s: &accelwall_csr::CsrSeries| {
        s.rows
            .iter()
            .cloned()
            .max_by(|a, b| a.reported_gain.total_cmp(&b.reported_gain))
            // lint:allow(no-panic-paths): CsrSeries construction rejects empty observation sets
            .expect("non-empty")
    };
    let v = best(&video);
    let vs = share(v.reported_gain, v.physical_gain);
    evidence.push(("video physical log-share".to_string(), vs));
    holds &= vs > 0.5;

    let btc = bitcoin::fig1_series()?;
    let b = best(&btc);
    let bs = share(b.reported_gain, b.physical_gain);
    evidence.push(("bitcoin physical log-share".to_string(), bs));
    holds &= bs > 0.5;

    let cnn = fpga::performance_series(fpga::CnnModel::Vgg16)?;
    let c = best(&cnn);
    let cs = share(c.reported_gain, c.physical_gain);
    evidence.push(("VGG-16 physical log-share".to_string(), cs));
    holds &= cs > 0.4; // the emerging domain leans hardest on algorithms

    Ok(Insight {
        title: "Specialized chips still depend on transistors",
        claim: "in all experiments the physical layer had a high impact on gains; \
                when CMOS ends, gains fall back to modest specialization returns",
        evidence,
        holds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_insights_hold() {
        let insights = section4e_insights().unwrap();
        assert_eq!(insights.len(), 4);
        for i in &insights {
            assert!(i.holds, "{}: {:?}", i.title, i.evidence);
            assert!(!i.evidence.is_empty());
            assert!(i.evidence.iter().all(|(_, v)| v.is_finite()));
        }
    }

    #[test]
    fn platform_jumps_dwarf_within_platform_growth() {
        let insights = section4e_insights().unwrap();
        let platform = &insights[1];
        let within = platform
            .evidence
            .iter()
            .find(|(l, _)| l.contains("within-ASIC"))
            .unwrap()
            .1;
        let first_asic = platform
            .evidence
            .iter()
            .find(|(l, _)| l.starts_with("first-ASIC"))
            .unwrap()
            .1;
        let fpga = platform
            .evidence
            .iter()
            .find(|(l, _)| l.starts_with("FPGA"))
            .unwrap()
            .1;
        assert!(first_asic / fpga > within);
    }

    #[test]
    fn asicboost_is_a_modest_one_time_trick() {
        assert!((1.1..1.4).contains(&ASICBOOST_FACTOR));
    }
}
