//! The nonblocking connection reactor: one event-loop thread owns the
//! listener and every client socket.
//!
//! The reactor replaces the old blocking accept-loop front end. All
//! sockets run in nonblocking mode and a single rotation loop services
//! them (`std::net` only — the crate forbids `unsafe`, so there is no
//! `epoll` shim; an adaptive spin-then-sleep pace keeps the loop cheap
//! when idle and hot when traffic flows). Per connection it:
//!
//! 1. **accepts** (bursts, bounded per iteration) — over the
//!    [`ServerConfig::max_connections`](crate::ServerConfig) cap the
//!    connection is shed with an immediate `503` + close, and the
//!    `serve-conn` fault site can shed (`err`) or drop (`panic`,
//!    contained) connections for chaos tests;
//! 2. **reads** into the connection's buffer and **parses** pipelined
//!    requests off it incrementally ([`parse_bytes`]);
//! 3. **classifies**: warm `GET`s answered from the pre-serialized
//!    [`ResponseCache`] never leave this thread; everything else
//!    becomes a [`ComputeJob`] for the bounded worker pool, whose
//!    `Rejected` backpressure turns into an in-order `503`;
//! 4. **delivers** pool [`Completion`]s back into per-connection
//!    sequence order and **flushes** with gathered vectored writes;
//! 5. enforces the **idle timeout** (slowloris protection) and the
//!    mid-request stall bound (`io_timeout`).
//!
//! Draining: once the shutdown latch is observed the reactor stops
//! accepting, keeps serving requests already buffered or arriving on
//! open connections, closes each connection as it goes quiet, and
//! returns when none remain — the pool is then joined by the caller.

use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::conn::{Conn, FillOutcome, Outgoing, Payload, PIPELINE_CAP, READ_BUF_CAP};
use crate::http::{parse_bytes, ParseOutcome, Request, RequestError, Response};
use crate::metrics::{Metrics, Route};
use crate::pool::ThreadPool;
use crate::respcache::ResponseCache;

/// Accepts drained per loop iteration, so a hot accept queue cannot
/// starve established connections.
const ACCEPT_BURST: usize = 64;

/// One request the reactor handed to the compute pool.
pub(crate) struct ComputeJob {
    /// Slab slot of the originating connection.
    pub slot: u32,
    /// Slot generation at dispatch; a stale generation means the
    /// connection died and the completion is dropped.
    pub generation: u32,
    /// Position in the connection's pipeline order.
    pub seq: u64,
    /// The parsed request.
    pub request: Request,
    /// When the request was parsed (latency measurement).
    pub started: Instant,
    /// The response-cache key when the request shape is cacheable (the
    /// pool inserts the rendered response under it on a 200).
    pub cache_key: Option<String>,
}

/// What the pool hands back to the event loop.
pub(crate) enum Completion {
    /// The request was computed; write the response out in order.
    Done {
        slot: u32,
        generation: u32,
        seq: u64,
        route: Route,
        response: Response,
        started: Instant,
    },
    /// The handler panicked mid-request (e.g. an armed `serve-request`
    /// panic): drop the whole connection, mirroring the old
    /// thread-per-connection behavior where the worker died holding it.
    Abort { slot: u32, generation: u32 },
}

/// The response-cache key for a request, when its shape is cacheable:
/// `GET` on the immutable-content routes. `/healthz`, `/metrics`,
/// `/shutdown`, and `/work/*` change per request and return `None`.
pub(crate) fn cache_key(request: &Request) -> Option<String> {
    if request.method != "GET" || !request.body.is_empty() {
        return None;
    }
    match request.path.as_str() {
        "/experiments" => Some("roster".to_string()),
        "/query/schema" => Some("schema".to_string()),
        "/query" => Some(format!("query?{}", request.query)),
        path => path.strip_prefix("/experiments/").map(|id| {
            let variant = if request.wants_plain_text() { 't' } else { 'j' };
            format!("exp:{id}:{variant}")
        }),
    }
}

/// The event loop's state; built and run by [`Server::run`](crate::Server::run).
pub(crate) struct Reactor {
    listener: TcpListener,
    metrics: Arc<Metrics>,
    respcache: Arc<ResponseCache>,
    shutdown: Arc<AtomicBool>,
    completions: Receiver<Completion>,
    max_connections: usize,
    idle_timeout: Duration,
    io_timeout: Duration,
    /// Connection slab; `None` slots are free (listed in `free`).
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on release so late completions for a
    /// recycled slot are recognized as stale.
    generations: Vec<u32>,
    free: Vec<usize>,
    open: usize,
    draining: bool,
}

/// The reactor's tuning knobs, lifted off [`crate::ServerConfig`].
pub(crate) struct ReactorLimits {
    pub max_connections: usize,
    pub idle_timeout: Duration,
    pub io_timeout: Duration,
}

impl Reactor {
    pub fn new(
        listener: TcpListener,
        metrics: Arc<Metrics>,
        respcache: Arc<ResponseCache>,
        shutdown: Arc<AtomicBool>,
        completions: Receiver<Completion>,
        limits: ReactorLimits,
    ) -> Reactor {
        Reactor {
            listener,
            metrics,
            respcache,
            shutdown,
            completions,
            max_connections: limits.max_connections,
            idle_timeout: limits.idle_timeout,
            io_timeout: limits.io_timeout,
            conns: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            open: 0,
            draining: false,
        }
    }

    /// Runs the event loop until a drain completes. Only listener-level
    /// setup failures escape; per-connection errors close that
    /// connection and nothing else.
    pub fn run(mut self, pool: &ThreadPool<ComputeJob>) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut scratch = vec![0u8; 16 * 1024];
        // Adaptive pacing: any progress resets to a hot spin; quiet
        // iterations back off exponentially so an idle server costs
        // hundreds (not millions) of syscalls per second while a warm
        // keep-alive round trip still resumes within microseconds.
        let mut nap = Duration::ZERO;
        loop {
            self.metrics.record_reactor_poll();
            let mut progress = false;
            while let Ok(completion) = self.completions.try_recv() {
                self.deliver(completion);
                progress = true;
            }
            if !self.draining && self.shutdown.load(Ordering::Acquire) {
                // Acquire pairs with the handle's AcqRel swap: the drain
                // decision happens-after whatever the stopper did first.
                self.draining = true;
                progress = true;
            }
            if !self.draining {
                progress |= self.accept_burst();
            }
            let now = Instant::now();
            for slot in 0..self.conns.len() {
                progress |= self.tick(slot, pool, &mut scratch, now);
            }
            if self.draining && self.open == 0 {
                return Ok(());
            }
            if progress {
                nap = Duration::ZERO;
            } else {
                let cap = if self.open > 0 {
                    Duration::from_micros(250)
                } else {
                    Duration::from_millis(2)
                };
                nap = if nap.is_zero() {
                    Duration::from_micros(5)
                } else {
                    (nap * 2).min(cap)
                };
                std::thread::sleep(nap);
            }
        }
    }

    /// Accepts a bounded burst of pending connections.
    fn accept_burst(&mut self) -> bool {
        let mut progress = false;
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    self.admit(stream);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept failure
            }
        }
        progress
    }

    /// Registers one accepted connection (or sheds it: `serve-conn`
    /// fault, connection cap).
    fn admit(&mut self, stream: TcpStream) {
        // The `serve-conn` chaos site: an `err` sheds the connection
        // with a 503 + close, a `panic` is contained right here — the
        // connection drops but the reactor thread survives.
        let probed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            accelwall_faults::probe(accelwall_faults::sites::SERVE_CONN)
        }));
        match probed {
            Ok(Ok(())) => {}
            Ok(Err(fault)) => {
                Reactor::shed(stream, &Response::text(503, format!("{fault}\n")));
                return;
            }
            Err(_) => return, // contained panic: the connection just drops
        }
        if self.open >= self.max_connections {
            self.metrics.record_over_cap();
            Reactor::shed(
                stream,
                &Response::text(503, "connection limit reached, retry later\n"),
            );
            return;
        }
        let Ok(conn) = Conn::new(stream, Instant::now()) else {
            return; // socket died between accept and setup
        };
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.generations.push(0);
                self.conns.len() - 1
            }
        };
        self.conns[slot] = Some(conn);
        self.open += 1;
        self.metrics.record_connection_opened();
    }

    /// Answers a shed connection with a close-mode response, bounded by
    /// short I/O timeouts, and drops it.
    fn shed(mut stream: TcpStream, response: &Response) {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        if response.write_to(&mut stream).is_err() {
            return;
        }
        // Half-close, then drain whatever the client already sent:
        // dropping a socket with unread bytes in its receive buffer
        // turns the close into an RST, which can discard the 503 still
        // in flight to the client. The drain is bounded by the read
        // timeout and a hard deadline, so a misbehaving client cannot
        // pin the reactor here.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let deadline = Instant::now() + Duration::from_millis(250);
        let mut sink = [0u8; 1024];
        loop {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) if Instant::now() >= deadline => break,
                Ok(_) => {}
            }
        }
    }

    /// Routes one pool completion back to its (still-live) connection.
    fn deliver(&mut self, completion: Completion) {
        match completion {
            Completion::Done {
                slot,
                generation,
                seq,
                route,
                response,
                started,
            } => {
                let Some(conn) = self.conn_at(slot, generation) else {
                    return; // connection died while the job ran
                };
                conn.in_flight -= 1;
                let close_after = conn.close_at == Some(seq);
                let head = response.head_bytes(!close_after);
                conn.enqueue(
                    seq,
                    Outgoing::new(
                        Payload::Owned {
                            head,
                            body: response.body,
                        },
                        close_after,
                        route,
                        response.status,
                        started,
                    ),
                );
            }
            Completion::Abort { slot, generation } => {
                if let Some(conn) = self.conn_at(slot, generation) {
                    // The handler died mid-request: no response exists
                    // and pipeline order is broken — drop the whole
                    // connection (the client sees EOF), exactly like the
                    // old thread-per-connection worker dying.
                    conn.dead = true;
                }
            }
        }
    }

    fn conn_at(&mut self, slot: u32, generation: u32) -> Option<&mut Conn> {
        let slot = slot as usize;
        if self.generations.get(slot).copied() != Some(generation) {
            return None;
        }
        self.conns.get_mut(slot).and_then(Option::as_mut)
    }

    /// One service pass over one connection: read, parse/dispatch,
    /// flush, observe, and apply the close policy.
    fn tick(
        &mut self,
        slot: usize,
        pool: &ThreadPool<ComputeJob>,
        scratch: &mut [u8],
        now: Instant,
    ) -> bool {
        let Some(mut conn) = self.conns[slot].take() else {
            return false;
        };
        let mut progress = false;
        let mut close_after_flush = false;
        if !conn.dead {
            if !conn.stop_parsing
                && conn.outstanding() < PIPELINE_CAP
                && conn.read_buf.len() < READ_BUF_CAP
            {
                progress |= conn.fill(scratch, now) == FillOutcome::Progress;
            }
            progress |= self.dispatch_requests(slot, &mut conn, pool, now);
            progress |= conn.flush(now);
            for flushed in conn.take_flushed() {
                self.metrics.observe(
                    flushed.route,
                    flushed.status,
                    now.duration_since(flushed.started),
                );
                close_after_flush |= flushed.close_after;
            }
        }
        let timed_out = conn.in_flight == 0
            && now.duration_since(conn.last_activity)
                > if conn.is_idle() {
                    self.idle_timeout
                } else {
                    self.io_timeout // mid-request stall (slowloris) bound
                };
        let close = conn.dead
            || close_after_flush
            || (conn.read_closed && conn.outstanding() == 0)
            || (conn.stop_parsing && conn.outstanding() == 0)
            || (self.draining && conn.outstanding() == 0 && conn.read_buf.is_empty())
            || timed_out;
        if close {
            if timed_out {
                self.metrics.record_idle_timeout();
            }
            drop(conn);
            self.generations[slot] = self.generations[slot].wrapping_add(1);
            self.free.push(slot);
            self.open -= 1;
            self.metrics.record_connection_closed();
            progress = true;
        } else {
            self.conns[slot] = Some(conn);
        }
        progress
    }

    /// Parses as many pipelined requests as the buffer holds (bounded
    /// by [`PIPELINE_CAP`]) and dispatches each.
    fn dispatch_requests(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        pool: &ThreadPool<ComputeJob>,
        now: Instant,
    ) -> bool {
        let mut progress = false;
        while !conn.stop_parsing && conn.outstanding() < PIPELINE_CAP {
            match parse_bytes(&conn.read_buf) {
                Ok(ParseOutcome::Complete { request, consumed }) => {
                    conn.read_buf.drain(..consumed);
                    progress = true;
                    self.dispatch(slot, conn, request, pool, now);
                }
                Ok(ParseOutcome::Partial { .. }) => break,
                Err(error) => {
                    // A malformed pipeline has no trustworthy framing:
                    // answer the precise 4xx in order, then close.
                    progress = true;
                    conn.stop_parsing = true;
                    conn.read_buf.clear();
                    let seq = conn.reserve_seq();
                    conn.close_at = Some(seq);
                    let (route, response) = error_response(&error);
                    let head = response.head_bytes(false);
                    conn.enqueue(
                        seq,
                        Outgoing::new(
                            Payload::Owned {
                                head,
                                body: response.body,
                            },
                            true,
                            route,
                            response.status,
                            now,
                        ),
                    );
                    break;
                }
            }
        }
        progress
    }

    /// Classifies one parsed request: warm cache hits are answered on
    /// this thread, everything else goes to the pool (with in-order
    /// `503` shedding when the pool is saturated).
    fn dispatch(
        &mut self,
        slot: usize,
        conn: &mut Conn,
        request: Request,
        pool: &ThreadPool<ComputeJob>,
        now: Instant,
    ) {
        let seq = conn.reserve_seq();
        conn.requests_parsed += 1;
        if conn.requests_parsed > 1 {
            self.metrics.record_keepalive_reuse();
        }
        if conn.outstanding() > 0 {
            self.metrics.record_pipelined();
        }
        let keep_alive = request.keep_alive;
        if !keep_alive {
            conn.close_at = Some(seq);
            conn.stop_parsing = true;
        }
        // The warm fast path: parse → key → lookup → writev, never
        // leaving this thread. Disabled while a fault plan is armed so
        // every request flows through the pool and its `serve-request`
        // probe — chaos semantics stay identical to the old front end.
        let key = if accelwall_faults::is_armed() {
            None
        } else {
            cache_key(&request)
        };
        if let Some(key) = &key {
            if let Some(hit) = self.respcache.get(key) {
                let (route, status) = (hit.route, hit.status);
                conn.enqueue(
                    seq,
                    Outgoing::new(
                        Payload::Cached {
                            entry: hit,
                            keep_alive,
                        },
                        !keep_alive,
                        route,
                        status,
                        now,
                    ),
                );
                return;
            }
        }
        let job = ComputeJob {
            slot: slot as u32,
            generation: self.generations[slot],
            seq,
            request,
            started: now,
            cache_key: key,
        };
        match pool.try_execute(job) {
            Ok(()) => conn.in_flight += 1,
            Err(_rejected) => {
                // Backpressure: the bounded pool is full (or closing).
                // Shed this request in pipeline order with the same 503
                // the old acceptor answered, and keep the connection.
                self.metrics.record_rejected();
                let response = Response::text(503, "server saturated, retry later\n");
                let head = response.head_bytes(conn.close_at.is_none_or(|s| s != seq));
                conn.enqueue(
                    seq,
                    Outgoing::new(
                        Payload::Owned {
                            head,
                            body: response.body,
                        },
                        conn.close_at == Some(seq),
                        Route::Other,
                        503,
                        now,
                    ),
                );
            }
        }
    }
}

/// Maps a parse failure onto the same (route, response) pairs the old
/// blocking front end answered.
fn error_response(error: &RequestError) -> (Route, Response) {
    match error {
        RequestError::TooLarge => (
            Route::Other,
            Response::text(431, "request head too large\n"),
        ),
        RequestError::BodyTooLarge => (
            Route::Query,
            Response::text(
                413,
                format!(
                    "request body exceeds {} bytes\n",
                    crate::http::MAX_BODY_BYTES
                ),
            ),
        ),
        RequestError::Malformed(what) => (
            Route::Other,
            Response::text(400, format!("malformed request: {what}\n")),
        ),
        // `parse_bytes` never yields `Io`; treat it as malformed if it
        // ever appears.
        RequestError::Io(_) => (
            Route::Other,
            Response::text(400, "malformed request: i/o\n"),
        ),
    }
}
