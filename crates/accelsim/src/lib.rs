//! Pre-RTL accelerator design-space simulator — the Aladdin substitute.
//!
//! Section VI of the paper drives Aladdin (a pre-RTL power/performance
//! simulator) over 16 accelerator benchmarks, sweeping the Table III design
//! space: partitioning factors 1…2¹⁹, simplification degrees 1…13, and
//! seven CMOS nodes, with heterogeneity (operator fusion) layered on top.
//! This crate implements the same knob set over the dataflow graphs of
//! [`accelwall_workloads`]:
//!
//! * **Partitioning** replicates execution lanes and memory ports: up to
//!   `partition_factor` operations issue per cycle. Runtime follows the
//!   classic bound `max(critical path, work / lanes)`, so partitioning
//!   helps until the DFG's depth dominates — the Fig. 13 plateau.
//! * **Simplification** narrows the datapath: each degree sheds 2 bits of
//!   width, linearly cutting dynamic energy, area, and leakage; once the
//!   width drops below the workload's required precision, operations
//!   serialize (`ceil(precision / width)` passes) — the "diminishing
//!   returns due to deep pipelining" the paper describes.
//! * **Heterogeneity** fuses chains of dependent single-cycle operations
//!   into one cycle; faster transistors fit longer chains, which is how
//!   newer CMOS keeps improving performance after partitioning saturates.
//! * **CMOS node** scales per-operation energy, leakage, and the fusion
//!   window through [`accelwall_cmos`].
//!
//! The output of a run is a [`SimReport`] with cycles, runtime, energy,
//! power, area, throughput, and energy efficiency; [`sweep`] runs the full
//! Table III grid (Fig. 13) and [`attribution`] decomposes each workload's
//! optimal-point gain into the four sources of Fig. 14.
//!
//! # Example
//!
//! ```
//! use accelwall_accelsim::{simulate, DesignConfig};
//! use accelwall_cmos::TechNode;
//! use accelwall_workloads::Workload;
//!
//! let dfg = Workload::S3d.default_instance();
//! let base = simulate(&dfg, &DesignConfig::baseline()).unwrap();
//! let tuned = simulate(
//!     &dfg,
//!     &DesignConfig::new(TechNode::N5, 256, 5, true),
//! )
//! .unwrap();
//! assert!(tuned.runtime_s < base.runtime_s);
//! assert!(tuned.energy_efficiency() > base.energy_efficiency());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod fu;
pub mod sched;
pub mod sim;
pub mod sweep;

pub use attribution::{
    attribute_gains, attribute_gains_lowered, attribute_gains_with_points, Attribution, GainSource,
};
pub use sched::{schedule, schedule_lowered, schedule_reference, simulate_scheduled, Schedule};
pub use sim::{simulate, simulate_lowered, DesignConfig, SimReport};
pub use sweep::{run_sweep, run_sweep_lowered, SweepPoint, SweepSpace};

use std::error::Error;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration violated the Table III ranges.
    InvalidConfig {
        /// Which knob was out of range.
        knob: &'static str,
        /// A rendering of the offending value.
        value: String,
    },
    /// The graph has no computation vertices to schedule.
    EmptyGraph,
    /// A sweep produced no design points, so there is no optimum to pick.
    EmptySweep,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { knob, value } => {
                write!(f, "invalid design config: {knob} = {value}")
            }
            SimError::EmptyGraph => write!(f, "graph has no computation vertices"),
            SimError::EmptySweep => write!(f, "sweep produced no design points"),
        }
    }
}

impl Error for SimError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
