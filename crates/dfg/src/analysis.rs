//! Graph analyses: stages, depth, working sets, path counts.
//!
//! These compute exactly the quantities Section V-B defines on the DFG:
//! the depth `D` (longest computation path, counted in vertices), the
//! per-stage working sets `WS_s`, and the size of the computation-path set
//! `P` (counted without enumeration — path counts grow exponentially).
//!
//! The algorithms run on the lowered [`Program`] — flat CSR edge tables
//! and the precomputed ASAP levels, no per-node allocation. The [`Dfg`]
//! front-end keeps the same analysis API by lowering and delegating, so
//! callers that only hold a graph never notice; hot paths lower once and
//! query the cached [`Program::stats`].

use crate::graph::{Dfg, NodeId};
use crate::program::{Program, VertexClass};

/// Summary statistics of a DFG, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfgStats {
    /// `|V|` — total vertices.
    pub vertices: usize,
    /// `|E|` — total edges.
    pub edges: usize,
    /// `|V_IN|` — input variables.
    pub inputs: usize,
    /// `|V_OUT|` — output variables.
    pub outputs: usize,
    /// `|V_CMP|` — computation vertices.
    pub computes: usize,
    /// `D` — vertices on the longest input-to-output computation path.
    pub depth: usize,
    /// Number of *compute* stages (ASAP levels occupied by computation
    /// vertices); the Fig. 11 example has 2.
    pub compute_stages: usize,
    /// `max_s |WS_s|` — the largest per-stage working set: the maximum
    /// number of values that must be held concurrently between stages
    /// (live values), which bounds both minimal storage and exploitable
    /// parallelism (Table II).
    pub max_working_set: usize,
    /// Widest single stage (vertices scheduled at one ASAP level) — the
    /// graph's intrinsic parallelism ceiling.
    pub max_stage_width: usize,
    /// `|P|` — number of computation paths, saturating at `u128::MAX`.
    pub path_count: u128,
}

impl Program {
    /// The paper's depth `D`: vertices on the longest path from an input
    /// to an output (the Fig. 11 example has `D = 4`: input, two stages,
    /// output). Outputs sit at their operand's level + 1 like any
    /// consumer; they represent writing the variable out.
    pub fn depth(&self) -> usize {
        self.output_slots
            .iter()
            .map(|&(_, v)| self.levels[v as usize] as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Vertex ids at each ASAP level, level-major.
    pub fn stages(&self) -> Vec<Vec<u32>> {
        let max = self.levels.iter().copied().max().unwrap_or(0) as usize;
        let mut stages = vec![Vec::new(); max + 1];
        for (v, &l) in self.levels.iter().enumerate() {
            stages[l as usize].push(v as u32);
        }
        stages
    }

    /// The live working set after each stage: values produced at or before
    /// stage `s` that are still consumed after `s`. The maximum over `s` is
    /// the paper's `max |WS_s|`.
    pub fn working_sets(&self) -> Vec<usize> {
        let n = self.vertex_count();
        let max_level = self.levels.iter().copied().max().unwrap_or(0) as usize;
        // last_use[v] = the latest level at which v's value is consumed;
        // the consumer CSR row gives it in one scan.
        let mut last_use = vec![0usize; n];
        for (v, slot) in last_use.iter_mut().enumerate() {
            *slot = self
                .consumers(v)
                .iter()
                .map(|&c| self.levels[c as usize] as usize)
                .max()
                .unwrap_or(0);
        }
        (0..=max_level)
            .map(|s| {
                (0..n)
                    .filter(|&v| {
                        self.classes[v] != VertexClass::Output
                            && self.levels[v] as usize <= s
                            && last_use[v] > s
                    })
                    .count()
            })
            .collect()
    }

    /// Number of input-to-output computation paths `|P|`, by dynamic
    /// programming over the topological order; saturates at `u128::MAX`.
    pub fn path_count(&self) -> u128 {
        let n = self.vertex_count();
        let mut paths_to = vec![0u128; n];
        for v in 0..n {
            paths_to[v] = match self.classes[v] {
                VertexClass::Input => 1,
                _ => self
                    .operands(v)
                    .iter()
                    .fold(0u128, |acc, &o| acc.saturating_add(paths_to[o as usize])),
            };
        }
        (0..n)
            .filter(|&v| self.classes[v] == VertexClass::Output)
            .fold(0u128, |acc, v| acc.saturating_add(paths_to[v]))
    }

    /// Computes the summary statistics from the flat arrays. Used once by
    /// the lowering pass; callers read the cached [`Program::stats`].
    pub(crate) fn compute_stats(&self) -> DfgStats {
        let compute_levels: std::collections::BTreeSet<u32> = self
            .classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == VertexClass::Compute)
            .map(|(v, _)| self.levels[v])
            .collect();
        let mut width = std::collections::HashMap::new();
        for &l in &self.levels {
            *width.entry(l).or_insert(0usize) += 1;
        }
        DfgStats {
            vertices: self.vertex_count(),
            edges: self.edge_count(),
            inputs: self.input_slots.len(),
            outputs: self.output_slots.len(),
            computes: self
                .classes
                .iter()
                .filter(|&&c| c == VertexClass::Compute)
                .count(),
            depth: self.depth(),
            compute_stages: compute_levels.len(),
            max_working_set: self.working_sets().into_iter().max().unwrap_or(0),
            max_stage_width: width.values().copied().max().unwrap_or(0),
            path_count: self.path_count(),
        }
    }
}

impl Dfg {
    /// ASAP level of every node: inputs at level 0, every other node one
    /// past its latest operand. Delegates to the lowering pass; lower
    /// once and use [`Program::levels`] when calling repeatedly.
    pub fn asap_levels(&self) -> Vec<usize> {
        self.lower().levels().iter().map(|&l| l as usize).collect()
    }

    /// The paper's depth `D`; see [`Program::depth`].
    pub fn depth(&self) -> usize {
        self.lower().depth()
    }

    /// Nodes at each ASAP level, level-major; see [`Program::stages`].
    pub fn stages(&self) -> Vec<Vec<NodeId>> {
        self.lower()
            .stages()
            .into_iter()
            .map(|stage| stage.into_iter().map(|v| NodeId(v as usize)).collect())
            .collect()
    }

    /// The live working set after each stage; see
    /// [`Program::working_sets`].
    pub fn working_sets(&self) -> Vec<usize> {
        self.lower().working_sets()
    }

    /// Number of input-to-output computation paths `|P|`; see
    /// [`Program::path_count`].
    pub fn path_count(&self) -> u128 {
        self.lower().path_count()
    }

    /// All summary statistics. Delegates to the lowering pass; lower once
    /// and read the cached [`Program::stats`] when calling repeatedly.
    pub fn stats(&self) -> DfgStats {
        self.lower().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DfgBuilder, Op};

    /// The Fig. 11 example: 3 inputs, 2 compute stages, 2 outputs.
    fn fig11() -> Dfg {
        let mut b = DfgBuilder::new("fig11");
        let d1 = b.input("d1");
        let d2 = b.input("d2");
        let d3 = b.input("d3");
        let s1a = b.op(Op::Add, &[d1, d2]);
        let s1b = b.op(Op::Div, &[d2, d3]);
        let s2a = b.op(Op::Sub, &[s1a, s1b]);
        let s2b = b.op(Op::Add, &[s1b, d3]);
        b.output("o1", s2a);
        b.output("o2", s2b);
        b.build().unwrap()
    }

    #[test]
    fn fig11_stats() {
        let g = fig11();
        let s = g.stats();
        assert_eq!(s.vertices, 9);
        assert_eq!(s.inputs, 3);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.computes, 4);
        assert_eq!(s.compute_stages, 2);
        // Longest path: input -> stage1 -> stage2 -> output = 4 vertices.
        assert_eq!(s.depth, 4);
        assert_eq!(s.edges, 2 * 4 + 2);
    }

    #[test]
    fn fig11_path_count() {
        // Paths to o1: d1->s1a->s2a, d2->s1a->s2a, d2->s1b->s2a, d3->s1b->s2a.
        // Paths to o2: d2->s1b->s2b, d3->s1b->s2b, d3->s2b.
        assert_eq!(fig11().path_count(), 7);
    }

    #[test]
    fn working_sets_track_live_values() {
        let g = fig11();
        let ws = g.working_sets();
        // After stage 0 (inputs ready): d1, d2, d3 all still consumed.
        assert_eq!(ws[0], 3);
        // After stage 1: s1a, s1b live; d3 still feeds s2b.
        assert_eq!(ws[1], 3);
        // After stage 2: s2a, s2b live until written to outputs.
        assert_eq!(ws[2], 2);
        assert_eq!(g.stats().max_working_set, 3);
    }

    #[test]
    fn chain_depth_counts_vertices() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let a = b.op(Op::Neg, &[x]);
        let c = b.op(Op::Neg, &[a]);
        let d = b.op(Op::Neg, &[c]);
        b.output("o", d);
        let g = b.build().unwrap();
        assert_eq!(g.depth(), 5); // in, 3 ops, out
        assert_eq!(g.path_count(), 1);
        assert_eq!(g.stats().max_working_set, 1);
    }

    #[test]
    fn wide_graph_stage_width() {
        let mut b = DfgBuilder::new("wide");
        let inputs: Vec<_> = (0..16).map(|i| b.input(format!("x{i}"))).collect();
        let negs: Vec<_> = inputs.iter().map(|&i| b.op(Op::Neg, &[i])).collect();
        for (i, &n) in negs.iter().enumerate() {
            b.output(format!("o{i}"), n);
        }
        let g = b.build().unwrap();
        let s = g.stats();
        assert_eq!(s.max_stage_width, 16);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_working_set, 16);
        assert_eq!(s.path_count, 16);
    }

    #[test]
    fn diamond_reconvergence() {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x");
        let l = b.op(Op::Neg, &[x]);
        let r = b.op(Op::Abs, &[x]);
        let j = b.op(Op::Add, &[l, r]);
        b.output("o", j);
        let g = b.build().unwrap();
        assert_eq!(g.path_count(), 2);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn stages_cover_all_nodes() {
        let g = fig11();
        let total: usize = g.stages().iter().map(Vec::len).sum();
        assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn front_end_delegation_matches_the_program() {
        let g = fig11();
        let p = g.lower();
        assert_eq!(g.stats(), p.stats());
        assert_eq!(g.depth(), p.depth());
        assert_eq!(g.working_sets(), p.working_sets());
        assert_eq!(g.path_count(), p.path_count());
        let delegated: Vec<usize> = g.asap_levels();
        let direct: Vec<usize> = p.levels().iter().map(|&l| l as usize).collect();
        assert_eq!(delegated, direct);
        // Cached stats equal a fresh recomputation.
        assert_eq!(p.stats(), p.compute_stats());
    }
}
