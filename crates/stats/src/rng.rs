//! A small, deterministic pseudo-random number generator.
//!
//! The corpus synthesizer and the randomized test suites need reproducible
//! random streams, but the build must work in offline environments where
//! no external registry crates are available. This module implements
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64 — the same
//! construction `rand`'s small RNGs use — in ~60 lines of dependency-free
//! code. It is **not** cryptographically secure; it is a statistical
//! generator for simulation and testing.
//!
//! # Example
//!
//! ```
//! use accelwall_stats::rng::Rng;
//!
//! let mut a = Rng::seed(42);
//! let mut b = Rng::seed(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.uniform(10.0, 20.0);
//! assert!((10.0..20.0).contains(&x));
//! ```

/// Deterministic xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open interval `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Log-uniform draw in `[lo, hi)`; both bounds must be positive.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.uniform(lo.ln(), hi.ln()).exp()
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded generation (Lemire); the slight modulo
        // bias of the plain approach is irrelevant here, but this is
        // just as cheap and unbiased enough for our range sizes.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform index into a slice of the given length; `len` must be
    /// non-zero.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Standard normal draw via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.uniform(f64::EPSILON, 1.0);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Decorrelated-jitter backoff (the "decorrelated jitter" scheme from
/// the AWS architecture blog): the next sleep is drawn uniformly from
/// `[base, 3 * previous]` and clamped to `[base, cap]`.
///
/// Unlike pure exponential backoff, retries of concurrent failed
/// clients spread out instead of thundering back in lockstep, while the
/// `3 * previous` upper edge keeps the expected window growing toward
/// the cap. Both the artifact cache's retry schedule and the work
/// coordinator's re-lease backoff draw from this one implementation.
pub fn decorrelated_backoff(
    rng: &mut Rng,
    base: std::time::Duration,
    cap: std::time::Duration,
    previous: std::time::Duration,
) -> std::time::Duration {
    let base_s = base.as_secs_f64();
    let high_s = (previous.as_secs_f64() * 3.0).max(base_s);
    let drawn = rng.uniform(base_s, high_s);
    std::time::Duration::from_secs_f64(drawn.clamp(base_s, cap.as_secs_f64()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng::seed(8);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = Rng::seed(1);
        for _ in 0..10_000 {
            let x = r.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_the_range_uniformly() {
        let mut r = Rng::seed(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // Expect 10_000 per bucket; allow ±6%.
            assert!((9_400..=10_600).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn std_normal_moments_are_sane() {
        let mut r = Rng::seed(3);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn decorrelated_backoff_stays_in_bounds_and_grows_toward_the_cap() {
        use std::time::Duration;
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(2);
        let mut r = Rng::seed(11);
        let mut sleep = base;
        let mut seen_past_double = false;
        for _ in 0..200 {
            sleep = decorrelated_backoff(&mut r, base, cap, sleep);
            assert!(sleep >= base, "undershot base: {sleep:?}");
            assert!(sleep <= cap, "overshot cap: {sleep:?}");
            seen_past_double |= sleep > base * 2;
        }
        assert!(seen_past_double, "jitter never grew past 2x base");
    }

    #[test]
    fn decorrelated_backoff_actually_jitters() {
        use std::time::Duration;
        let base = Duration::from_millis(25);
        let cap = Duration::from_secs(2);
        let mut r = Rng::seed(12);
        let prev = Duration::from_millis(100);
        let draws: Vec<Duration> = (0..64)
            .map(|_| decorrelated_backoff(&mut r, base, cap, prev))
            .collect();
        let mut distinct = draws.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() > 8, "draws collapsed: {draws:?}");
        // A zero/short previous sleep still sleeps at least the base.
        let floor = decorrelated_backoff(&mut r, base, cap, Duration::ZERO);
        assert_eq!(floor, base);
    }
}
