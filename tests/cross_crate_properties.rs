//! Randomized tests spanning crate boundaries, driven by the workspace's
//! own deterministic [`Rng`].

use accelerator_wall::prelude::*;
use accelerator_wall::stats::Rng;

const CASES: u64 = 64;

fn arb_node(rng: &mut Rng) -> TechNode {
    let all = TechNode::all();
    all[rng.index(all.len())]
}

#[test]
fn potential_monotone_in_die_area() {
    let mut rng = Rng::seed(0xC405_0001);
    for _ in 0..CASES {
        let node = arb_node(&mut rng);
        let die = rng.uniform(10.0, 400.0);
        let factor = rng.uniform(1.1, 4.0);
        // More silicon never reduces the area-limited budget.
        let model = PotentialModel::paper();
        let small = ChipSpec::new(node, die, 1.0, 1e4);
        let large = ChipSpec::new(node, die * factor, 1.0, 1e4);
        assert!(model.area_limited_transistors(&large) > model.area_limited_transistors(&small));
    }
}

#[test]
fn potential_monotone_in_tdp() {
    let mut rng = Rng::seed(0xC405_0002);
    for _ in 0..CASES {
        let die = rng.uniform(50.0, 800.0);
        let tdp = rng.uniform(20.0, 400.0);
        let factor = rng.uniform(1.1, 4.0);
        let model = PotentialModel::paper();
        let node = TechNode::N7;
        let lean = ChipSpec::new(node, die, 1.0, tdp);
        let fat = ChipSpec::new(node, die, 1.0, tdp * factor);
        assert!(model.power_limited_transistors(&fat) >= model.power_limited_transistors(&lean));
        assert!(model.throughput(&fat) >= model.throughput(&lean));
    }
}

#[test]
fn csr_decomposition_identity() {
    let mut rng = Rng::seed(0xC405_0003);
    for _ in 0..CASES {
        let reported = rng.log_uniform(1e-3, 1e6);
        let phys_a = rng.log_uniform(1e-3, 1e6);
        let phys_b = rng.log_uniform(1e-3, 1e6);
        let d = decompose(reported, phys_a, phys_b).unwrap();
        assert!((d.specialization * d.cmos - d.reported).abs() <= 1e-9 * d.reported);
    }
}

#[test]
fn simulator_runtime_monotone_in_partitioning() {
    let mut rng = Rng::seed(0xC405_0004);
    for _ in 0..CASES {
        let p_exp = rng.below(18) as u32;
        let s = rng.range(1, 13) as u32;
        let nodes = TechNode::sweep_nodes();
        let node = nodes[rng.index(nodes.len())];
        let dfg = Workload::Red.default_instance();
        let a = simulate(&dfg, &DesignConfig::new(node, 1 << p_exp, s, true)).unwrap();
        let b = simulate(&dfg, &DesignConfig::new(node, 1 << (p_exp + 1), s, true)).unwrap();
        assert!(b.cycles <= a.cycles + 1e-9);
        assert!(b.critical_path_cycles == a.critical_path_cycles);
    }
}

#[test]
fn simulator_energy_monotone_in_node() {
    let mut rng = Rng::seed(0xC405_0005);
    for _ in 0..CASES {
        let p_exp = rng.below(12) as u32;
        let s = rng.range(1, 13) as u32;
        // Same schedule, newer node: strictly less dynamic energy.
        let dfg = Workload::Sad.default_instance();
        let old = simulate(
            &dfg,
            &DesignConfig::new(TechNode::N45, 1 << p_exp, s, false),
        )
        .unwrap();
        let new = simulate(&dfg, &DesignConfig::new(TechNode::N5, 1 << p_exp, s, false)).unwrap();
        assert!(new.dynamic_energy_j < old.dynamic_energy_j);
        assert_eq!(new.cycles, old.cycles);
    }
}

#[test]
fn relation_matrix_antisymmetry_on_random_observations() {
    let mut rng = Rng::seed(0xC405_0006);
    for _ in 0..CASES {
        let seed = rng.below(1000);
        let n_arch = rng.range(2, 6) as usize;
        // Multiplicatively consistent gains: relations must recover scale
        // ratios and satisfy gain(x,y) * gain(y,x) = 1.
        let mut obs = ArchObservations::new();
        let scale = |i: usize| 1.0 + (i as f64) * 1.7 + (seed % 7) as f64 * 0.1;
        for i in 0..n_arch {
            for app in 0..6 {
                let t = 1.0 + app as f64;
                obs.add(&format!("arch{i}"), &format!("app{app}"), scale(i) * t)
                    .unwrap();
            }
        }
        let m = RelationMatrix::build(&obs, 5).unwrap();
        for i in 0..n_arch {
            for j in 0..n_arch {
                let g = m
                    .gain(&format!("arch{i}"), &format!("arch{j}"))
                    .unwrap()
                    .unwrap();
                let back = m
                    .gain(&format!("arch{j}"), &format!("arch{i}"))
                    .unwrap()
                    .unwrap();
                assert!((g * back - 1.0).abs() < 1e-9);
                assert!((g - scale(i) / scale(j)).abs() < 1e-6 * (1.0 + g));
            }
        }
    }
}

#[test]
fn workload_dfgs_scale_sanely() {
    let mut rng = Rng::seed(0xC405_0007);
    for _ in 0..CASES {
        let reps = rng.range(1, 4) as usize;
        // Building repeatedly is deterministic.
        let a = Workload::Fft.default_instance();
        for _ in 0..reps {
            let b = Workload::Fft.default_instance();
            assert_eq!(a.stats(), b.stats());
        }
    }
}

#[test]
fn table2_bounds_are_monotone_in_graph_size() {
    for n in 2usize..6 {
        // A larger reduction has larger (or equal) evaluated bounds in
        // every Table II cell.
        use accelerator_wall::dfg::limits::table2;
        let small = accelerator_wall::workloads::simple::build_reduction(1 << n).stats();
        let large = accelerator_wall::workloads::simple::build_reduction(1 << (n + 1)).stats();
        for cell in table2() {
            assert!(
                cell.time.evaluate(&large) >= cell.time.evaluate(&small),
                "{:?}/{:?}",
                cell.component,
                cell.concept
            );
            assert!(cell.space.evaluate(&large) >= cell.space.evaluate(&small));
        }
    }
}
