//! [`ArtifactCache`]: process-lifetime memoization with failure
//! containment.
//!
//! The [`Ctx`](crate::cache::Ctx) memoizes the *inputs* experiments share
//! (corpus, fits, sweeps). This module memoizes the *outputs*: each
//! registry target's [`Artifact`] is computed at most once per cache
//! lifetime, so a long-lived process (the `accelwall serve` HTTP server)
//! extends the pipeline's compute-once invariant from "per `all` run" to
//! "per server lifetime".
//!
//! Success is permanent; failure is not. Each target sits behind a slot
//! state machine —
//!
//! ```text
//! Empty ── first request ──► Computing ──► Done (artifact, forever)
//!   ▲                           │
//!   └── retry after backoff ────┴──► Failed { attempts, last_error }
//! ```
//!
//! — where a failed attempt parks the slot in `Failed` with a
//! decorrelated-jitter backoff stamp instead of memoizing the error
//! forever. A later request after the backoff window retries (bounded by
//! [`RetryPolicy::max_attempts`]); inside the window, and once the budget
//! is spent, requests answer the stored error immediately. Panicking
//! experiments are caught (`catch_unwind`) on a dedicated compute thread
//! and converted to [`Error::ExperimentPanicked`], so one bad target can
//! never poison a lock or kill a server worker.
//!
//! Computes run on their own named thread (`accelwall-compute-{n}`) while
//! requesters wait on a condvar; [`ArtifactCache::get_within`] bounds
//! that wait, turning a hung experiment into a typed
//! [`Error::ComputeTimeout`] (the server's `504`) while the compute keeps
//! running and can still settle the slot for later requests.
//!
//! Requesting an artifact still resolves its declared dependencies first,
//! in the same order [`Registry::schedule`] would, so a dependent target
//! requested cold warms exactly the caches an `all` run would.
//!
//! Every fault path is observable: [`CacheStats`] counts requests, hits,
//! computes, retries, contained panics, and timeouts, and
//! [`ArtifactCache::failed_targets`] lists the slots currently in
//! `Failed` (the server's `/healthz` degraded report). Before every
//! attempt the cache probes `accelwall_faults` with the experiment's id,
//! so an armed [`FaultPlan`](accelwall_faults::FaultPlan) can provoke any
//! of these paths deterministically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use accelwall_stats::rng::{decorrelated_backoff, Rng};

use crate::cache::Ctx;
use crate::error::{Error, Result};
use crate::experiment::{Artifact, Experiment};
use crate::registry::Registry;

/// Bounds on how failure retries behave.
///
/// The first failure of a slot waits exactly `backoff_base`; each later
/// failure draws a decorrelated-jitter window
/// ([`accelwall_stats::rng::decorrelated_backoff`]) — uniform in
/// `[backoff_base, 3 × previous]`, clamped to `backoff_cap` — so
/// concurrently failing targets spread their retries instead of
/// thundering back in lockstep. After `max_attempts` failures the error
/// is permanent for the cache's lifetime. The `Retry-After` a server
/// reports always comes from the actual stamped instant
/// ([`FailedTarget::retry_in`]), never from re-deriving the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries) before a failure sticks.
    pub max_attempts: u32,
    /// Floor of every backoff window; the first failure waits exactly
    /// this long.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff window.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
        }
    }
}

/// Distinguishes jitter streams across attempts within one process;
/// Relaxed: a pure uniqueness counter, no ordering with other state.
static JITTER_NONCE: AtomicUsize = AtomicUsize::new(0);

/// A fresh jitter stream for one backoff draw, seeded from the process
/// id and a global nonce — never the clock, so arming a fault plan in a
/// test cannot make the schedule depend on wall time.
fn jitter_rng() -> Rng {
    let nonce = JITTER_NONCE.fetch_add(1, Ordering::Relaxed) as u64;
    Rng::seed(u64::from(std::process::id()).wrapping_shl(32) ^ nonce)
}

/// One target currently (or permanently) in the `Failed` state.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedTarget {
    /// The failed experiment's id.
    pub id: &'static str,
    /// Consecutive failed attempts so far.
    pub attempts: u32,
    /// The most recent failure.
    pub error: Error,
    /// Time until a request may retry; `None` once the attempt budget is
    /// spent and the failure is permanent.
    pub retry_in: Option<Duration>,
}

/// Memoizes every registry target's artifact for the life of the value.
///
/// Thread-safe: concurrent requests for the same target share one
/// compute (waiters park on a per-slot condvar), exactly like the shared
/// inputs in [`Ctx`]. Cloning shares the same slots.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    registry: Registry,
    ctx: Ctx,
    slots: Vec<Slot>,
    policy: RetryPolicy,
    requests: AtomicUsize,
    hits: AtomicUsize,
    computes: AtomicUsize,
    retries: AtomicUsize,
    panics_contained: AtomicUsize,
    timeouts: AtomicUsize,
}

#[derive(Debug)]
struct Slot {
    /// The settled artifact; written exactly once, before the gate turns
    /// `Done`, so readers that see the value never need the lock.
    value: OnceLock<Artifact>,
    gate: Mutex<Gate>,
    ready: Condvar,
}

#[derive(Debug)]
enum Gate {
    Empty,
    Computing,
    Done,
    Failed {
        attempts: u32,
        last_error: Error,
        retry_at: Instant,
        /// The window just served, fed back as the `previous` term of
        /// the next decorrelated-jitter draw.
        backoff: Duration,
    },
}

/// A snapshot of the counters of an [`ArtifactCache`].
///
/// The cache invariant is `computes <= targets + retries` regardless of
/// request counts or thread interleaving; `hits` counts requests
/// answered from an already-settled slot (a stored artifact, or a stored
/// failure that is not yet eligible to retry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Times [`ArtifactCache::get`] was called.
    pub requests: usize,
    /// Requests whose slot was already settled on arrival.
    pub hits: usize,
    /// Experiment attempts actually executed (including dependency fills
    /// and failed attempts).
    pub computes: usize,
    /// Attempts beyond the first for a slot — failures given another try.
    pub retries: usize,
    /// Experiment panics caught and converted to typed errors.
    pub panics_contained: usize,
    /// Requests that gave up waiting under a [`ArtifactCache::get_within`]
    /// deadline.
    pub timeouts: usize,
}

impl CacheStats {
    /// Requests that had to wait for (or trigger) a compute.
    pub fn misses(&self) -> usize {
        self.requests - self.hits
    }
}

fn lock(gate: &Mutex<Gate>) -> MutexGuard<'_, Gate> {
    // A panicking experiment never holds the gate (computes run under
    // catch_unwind and settle the gate afterwards), but recover anyway.
    gate.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ArtifactCache {
    /// Wraps a registry and a shared-input context in an artifact cache
    /// with the default [`RetryPolicy`].
    pub fn new(registry: Registry, ctx: Ctx) -> ArtifactCache {
        ArtifactCache::with_retry_policy(registry, ctx, RetryPolicy::default())
    }

    /// As [`ArtifactCache::new`], with an explicit retry policy (tests
    /// use tiny backoffs to exercise recovery quickly).
    pub fn with_retry_policy(registry: Registry, ctx: Ctx, policy: RetryPolicy) -> ArtifactCache {
        let slots = registry
            .experiments()
            .map(|_| Slot {
                value: OnceLock::new(),
                gate: Mutex::new(Gate::Empty),
                ready: Condvar::new(),
            })
            .collect();
        ArtifactCache {
            inner: Arc::new(Inner {
                registry,
                ctx,
                slots,
                policy,
                requests: AtomicUsize::new(0),
                hits: AtomicUsize::new(0),
                computes: AtomicUsize::new(0),
                retries: AtomicUsize::new(0),
                panics_contained: AtomicUsize::new(0),
                timeouts: AtomicUsize::new(0),
            }),
        }
    }

    /// The registry whose targets this cache serves.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The shared-input context every cached run draws from.
    pub fn ctx(&self) -> &Ctx {
        &self.inner.ctx
    }

    /// The memoized artifact for `id`, computing it (and its declared
    /// dependencies, dependencies first) on first request, with no bound
    /// on how long the compute may take.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownExperiment`] for ids outside the registry (the
    /// caller gets the full roster, exactly like the CLI),
    /// [`Error::DependencyCycle`] if declarations deadlock, or the
    /// failure of the most recent attempt — retryable after its backoff
    /// window until [`RetryPolicy::max_attempts`] is spent.
    pub fn get(&self, id: &str) -> Result<&Artifact> {
        self.get_within(id, None)
    }

    /// As [`ArtifactCache::get`], but gives up waiting after `deadline`
    /// with [`Error::ComputeTimeout`]. The compute itself keeps running
    /// on its own thread and can still settle the slot for later
    /// requests — a hung experiment costs a request, not a worker.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCache::get`], plus [`Error::ComputeTimeout`].
    pub fn get_within(&self, id: &str, deadline: Option<Duration>) -> Result<&Artifact> {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        let index = self.index_of(id)?;
        if let Some(settled) = self.peek(index) {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return settled;
        }
        let wait_until = deadline.map(|d| Instant::now() + d);
        for dep in self.closure(index)? {
            // Dependency warming is best-effort, exactly as in an `all`
            // run: a failed dep surfaces through the target's own run.
            let _ = self.resolve(dep, wait_until);
        }
        self.resolve(index, wait_until)
    }

    /// Answers from a settled slot without blocking: a stored artifact,
    /// or a stored failure that is not currently eligible to retry.
    fn peek(&self, index: usize) -> Option<Result<&Artifact>> {
        let slot = &self.inner.slots[index];
        if let Some(artifact) = slot.value.get() {
            return Some(Ok(artifact));
        }
        let gate = lock(&slot.gate);
        if let Gate::Failed {
            attempts,
            last_error,
            retry_at,
            ..
        } = &*gate
        {
            if *attempts >= self.inner.policy.max_attempts || Instant::now() < *retry_at {
                return Some(Err(last_error.clone()));
            }
        }
        None
    }

    /// Drives one slot to a settled answer: starts (or retries) the
    /// compute if the slot is open, otherwise waits for the thread that
    /// is already computing it.
    fn resolve(&self, index: usize, wait_until: Option<Instant>) -> Result<&Artifact> {
        let slot = &self.inner.slots[index];
        let started = Instant::now();
        let mut gate = lock(&slot.gate);
        loop {
            match &*gate {
                Gate::Done => {
                    let value = slot.value.get();
                    // lint:allow(no-panic-paths): Done is written only after the OnceLock fills
                    return Ok(value.expect("Done gate implies a stored artifact"));
                }
                Gate::Failed {
                    attempts,
                    last_error,
                    retry_at,
                    backoff,
                } => {
                    if *attempts >= self.inner.policy.max_attempts || Instant::now() < *retry_at {
                        return Err(last_error.clone());
                    }
                    let (prior, prior_backoff) = (*attempts, *backoff);
                    self.inner.retries.fetch_add(1, Ordering::Relaxed);
                    *gate = Gate::Computing;
                    drop(gate);
                    self.spawn_attempt(index, prior, prior_backoff);
                    gate = lock(&slot.gate);
                }
                Gate::Empty => {
                    *gate = Gate::Computing;
                    drop(gate);
                    self.spawn_attempt(index, 0, Duration::ZERO);
                    gate = lock(&slot.gate);
                }
                Gate::Computing => match wait_until {
                    None => {
                        gate = slot
                            .ready
                            .wait(gate)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Some(until) => {
                        let now = Instant::now();
                        if now >= until {
                            self.inner.timeouts.fetch_add(1, Ordering::Relaxed);
                            return Err(Error::ComputeTimeout {
                                id: self.id_of(index).to_string(),
                                waited_ms: started.elapsed().as_millis() as u64,
                            });
                        }
                        gate = slot
                            .ready
                            .wait_timeout(gate, until - now)
                            .unwrap_or_else(PoisonError::into_inner)
                            .0;
                    }
                },
            }
        }
    }

    /// Runs one attempt off the requester's thread so a panic or a hang
    /// is contained there, never on a server worker. Attempts go through
    /// the shared `accelwall-par` detached-spawn helper, which parks and
    /// reuses carrier threads — retries under backoff no longer churn a
    /// fresh OS thread each attempt. If no carrier can be obtained the
    /// helper runs the attempt inline; containment still holds
    /// (`catch_unwind`), only the deadline degrades to best-effort.
    fn spawn_attempt(&self, index: usize, prior_failures: u32, prior_backoff: Duration) {
        self.inner.computes.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::clone(&self.inner);
        accelwall_par::spawn_detached(&format!("accelwall-compute-{index}"), move || {
            run_attempt(&inner, index, prior_failures, prior_backoff);
        });
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            requests: self.inner.requests.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            computes: self.inner.computes.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            panics_contained: self.inner.panics_contained.load(Ordering::Relaxed),
            timeouts: self.inner.timeouts.load(Ordering::Relaxed),
        }
    }

    /// Every target currently in the `Failed` state, in registry order
    /// (the server's `/healthz` degraded report). Empty means ready.
    pub fn failed_targets(&self) -> Vec<FailedTarget> {
        (0..self.inner.slots.len())
            .filter_map(|index| self.failure_at(index))
            .collect()
    }

    /// The `Failed`-state record for `id`, if it is currently failed.
    pub fn failure_of(&self, id: &str) -> Option<FailedTarget> {
        self.failure_at(self.index_of(id).ok()?)
    }

    fn failure_at(&self, index: usize) -> Option<FailedTarget> {
        let gate = lock(&self.inner.slots[index].gate);
        if let Gate::Failed {
            attempts,
            last_error,
            retry_at,
            ..
        } = &*gate
        {
            let retry_in = if *attempts >= self.inner.policy.max_attempts {
                None
            } else {
                Some(retry_at.saturating_duration_since(Instant::now()))
            };
            return Some(FailedTarget {
                id: self.id_of(index),
                attempts: *attempts,
                error: last_error.clone(),
                retry_in,
            });
        }
        None
    }

    fn index_of(&self, id: &str) -> Result<usize> {
        self.inner
            .registry
            .experiments()
            .position(|e| e.id() == id)
            .ok_or_else(|| Error::UnknownExperiment {
                id: id.to_string(),
                known: self.inner.registry.ids(),
            })
    }

    fn id_of(&self, index: usize) -> &'static str {
        self.inner
            .registry
            .experiments()
            .nth(index)
            .map_or("<out of roster>", Experiment::id)
    }

    /// The dependency closure of `index` in dependencies-first order,
    /// excluding `index` itself.
    fn closure(&self, index: usize) -> Result<Vec<usize>> {
        let mut order = Vec::new();
        let mut state = vec![Visit::Unvisited; self.inner.slots.len()];
        self.visit(index, &mut state, &mut order)?;
        order.pop();
        Ok(order)
    }

    fn visit(&self, index: usize, state: &mut [Visit], order: &mut Vec<usize>) -> Result<()> {
        match state[index] {
            Visit::Done => return Ok(()),
            Visit::InProgress => {
                return Err(Error::DependencyCycle {
                    ids: self.inner.registry.ids(),
                })
            }
            Visit::Unvisited => state[index] = Visit::InProgress,
        }
        let deps: Vec<usize> = self
            .experiment(index)?
            .deps()
            .iter()
            .map(|d| self.index_of(d))
            .collect::<Result<_>>()?;
        for dep in deps {
            self.visit(dep, state, order)?;
        }
        state[index] = Visit::Done;
        order.push(index);
        Ok(())
    }

    /// The experiment at roster position `index`, as a typed error.
    ///
    /// `slots` and the roster share their length, so every index that
    /// reaches here is in range; keeping the lookup fallible means an
    /// inconsistency would surface as a typed error, not a panic in
    /// whichever server worker happened to trip it.
    fn experiment(&self, index: usize) -> Result<&dyn Experiment> {
        self.inner
            .registry
            .experiments()
            .nth(index)
            .ok_or_else(|| Error::UnknownExperiment {
                id: format!("roster index {index}"),
                known: self.inner.registry.ids(),
            })
    }
}

/// One compute attempt, run on its own thread: probe the fault plan,
/// run the experiment under `catch_unwind`, settle the gate, wake the
/// waiters.
fn run_attempt(inner: &Arc<Inner>, index: usize, prior_failures: u32, prior_backoff: Duration) {
    let outcome = catch_unwind(AssertUnwindSafe(|| attempt(inner, index)));
    let result = outcome.unwrap_or_else(|_| {
        inner.panics_contained.fetch_add(1, Ordering::Relaxed);
        Err(Error::ExperimentPanicked {
            id: inner
                .registry
                .experiments()
                .nth(index)
                .map_or_else(|| format!("roster index {index}"), |e| e.id().to_string()),
        })
    });
    let slot = &inner.slots[index];
    let mut gate = lock(&slot.gate);
    match result {
        Ok(artifact) => {
            // Only one attempt is ever in flight per slot, so this set
            // wins; the gate turns Done strictly after the value lands.
            let _ = slot.value.set(artifact);
            *gate = Gate::Done;
        }
        Err(error) => {
            let attempts = prior_failures + 1;
            let backoff = decorrelated_backoff(
                &mut jitter_rng(),
                inner.policy.backoff_base,
                inner.policy.backoff_cap,
                prior_backoff,
            );
            *gate = Gate::Failed {
                attempts,
                last_error: error,
                retry_at: Instant::now() + backoff,
                backoff,
            };
        }
    }
    drop(gate);
    slot.ready.notify_all();
}

fn attempt(inner: &Arc<Inner>, index: usize) -> Result<Artifact> {
    let experiment =
        inner
            .registry
            .experiments()
            .nth(index)
            .ok_or_else(|| Error::UnknownExperiment {
                id: format!("roster index {index}"),
                known: inner.registry.ids(),
            })?;
    // Each experiment id is a dynamic fault-injection site: an armed
    // plan like `fig3b:err:2` fires here, before the real compute.
    accelwall_faults::probe(experiment.id())?;
    experiment.run(&inner.ctx)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Visit {
    Unvisited,
    InProgress,
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Value;
    use accelwall_accelsim::SweepSpace;
    use accelwall_stats::StatsError;

    fn cache() -> ArtifactCache {
        ArtifactCache::new(Registry::paper(), Ctx::with_space(SweepSpace::coarse()))
    }

    /// A tiny policy so recovery tests run in milliseconds.
    fn eager_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(20),
        }
    }

    /// An experiment that fails its first `failures` runs, then succeeds.
    struct Flaky {
        id: &'static str,
        failures: u32,
        runs: AtomicUsize,
    }

    impl Experiment for Flaky {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "fails N times then succeeds"
        }
        fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
            let run = self.runs.fetch_add(1, Ordering::SeqCst);
            if (run as u32) < self.failures {
                return Err(Error::Stats(StatsError::NotEnoughData {
                    provided: run,
                    required: self.failures as usize,
                }));
            }
            Ok(Artifact::new(
                Value::from(self.id),
                format!("{}\n", self.id),
            ))
        }
    }

    /// An experiment that panics its first `panics` runs, then succeeds.
    struct Panicky {
        id: &'static str,
        panics: u32,
        runs: AtomicUsize,
    }

    impl Experiment for Panicky {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "panics N times then succeeds"
        }
        fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
            let run = self.runs.fetch_add(1, Ordering::SeqCst);
            assert!((run as u32) >= self.panics, "{} ordered to panic", self.id);
            Ok(Artifact::new(
                Value::from(self.id),
                format!("{}\n", self.id),
            ))
        }
    }

    /// An experiment that sleeps long, for deadline tests.
    struct Sleepy {
        id: &'static str,
        sleep: Duration,
    }

    impl Experiment for Sleepy {
        fn id(&self) -> &'static str {
            self.id
        }
        fn description(&self) -> &'static str {
            "sleeps, then succeeds"
        }
        fn run(&self, _ctx: &Ctx) -> Result<Artifact> {
            std::thread::sleep(self.sleep);
            Ok(Artifact::new(
                Value::from(self.id),
                format!("{}\n", self.id),
            ))
        }
    }

    fn fake_cache(experiments: Vec<Box<dyn Experiment>>) -> ArtifactCache {
        ArtifactCache::with_retry_policy(
            Registry::from_experiments(experiments),
            Ctx::with_space(SweepSpace::coarse()),
            eager_policy(),
        )
    }

    #[test]
    fn repeat_requests_compute_once_and_hit_after() {
        let cache = cache();
        let a = cache.get("fig3a").unwrap().clone();
        let b = cache.get("fig3a").unwrap().clone();
        assert_eq!(a, b);
        let s = cache.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.computes, 1);
        assert_eq!(s.retries, 0);
        assert_eq!(s.panics_contained, 0);
    }

    #[test]
    fn dependent_target_fills_its_prerequisites_first() {
        let cache = cache();
        // fig14 declares fig13 as a dependency; a cold fig14 request must
        // leave fig13 warm so the follow-up request is a pure hit.
        cache.get("fig14").unwrap();
        let after_first = cache.stats();
        assert_eq!(after_first.computes, 2, "fig14 + its dep fig13");
        cache.get("fig13").unwrap();
        let s = cache.stats();
        assert_eq!(s.computes, 2, "fig13 was already computed");
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn unknown_id_carries_the_roster_and_counts_nothing() {
        let cache = cache();
        match cache.get("fig99") {
            Err(Error::UnknownExperiment { id, known }) => {
                assert_eq!(id, "fig99");
                assert_eq!(known, cache.registry().ids());
            }
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
        assert_eq!(cache.stats().computes, 0);
    }

    #[test]
    fn concurrent_requests_share_one_compute() {
        let cache = cache();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    cache.get("fig3a").unwrap();
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.computes, 1);
        assert_eq!(s.requests, 8);
        // The shared inputs stayed compute-once too.
        assert!(cache.ctx().counters().corpus_computes <= 1);
    }

    #[test]
    fn transient_failures_retry_after_backoff_and_then_stick_as_ok() {
        let cache = fake_cache(vec![Box::new(Flaky {
            id: "flaky",
            failures: 2,
            runs: AtomicUsize::new(0),
        })]);
        assert!(cache.get("flaky").is_err(), "attempt 1 fails");
        // Inside the backoff window the stored error answers instantly.
        assert!(cache.get("flaky").is_err());
        let degraded = cache.failed_targets();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].id, "flaky");
        assert_eq!(degraded[0].attempts, 1);
        assert!(degraded[0].retry_in.is_some(), "budget not yet spent");
        // Decorrelated jitter with a zero previous window degenerates to
        // the floor, so the first retry window is exactly the base.
        assert!(degraded[0].retry_in.unwrap() <= eager_policy().backoff_base);
        std::thread::sleep(Duration::from_millis(10));
        assert!(cache.get("flaky").is_err(), "attempt 2 fails");
        std::thread::sleep(Duration::from_millis(25));
        let artifact = cache.get("flaky").unwrap().clone();
        assert_eq!(artifact.text, "flaky\n");
        // Recovered: no longer degraded, success is memoized.
        assert!(cache.failed_targets().is_empty());
        assert_eq!(cache.get("flaky").unwrap().clone(), artifact);
        let s = cache.stats();
        assert_eq!(s.computes, 3, "two failures + one success");
        assert_eq!(s.retries, 2);
        assert!(s.computes <= 1 + s.retries, "computes <= targets + retries");
    }

    #[test]
    fn attempt_budget_makes_a_failure_permanent() {
        let cache = fake_cache(vec![Box::new(Flaky {
            id: "doomed",
            failures: u32::MAX,
            runs: AtomicUsize::new(0),
        })]);
        for _ in 0..eager_policy().max_attempts {
            assert!(cache.get("doomed").is_err());
            std::thread::sleep(Duration::from_millis(25));
        }
        let before = cache.stats().computes;
        assert!(cache.get("doomed").is_err(), "budget spent: still an error");
        assert_eq!(cache.stats().computes, before, "and no further attempts");
        let degraded = cache.failed_targets();
        assert_eq!(degraded[0].attempts, eager_policy().max_attempts);
        assert!(degraded[0].retry_in.is_none(), "permanently failed");
    }

    #[test]
    fn a_panicking_experiment_is_contained_and_recovers() {
        let cache = fake_cache(vec![Box::new(Panicky {
            id: "bomb",
            panics: 1,
            runs: AtomicUsize::new(0),
        })]);
        match cache.get("bomb") {
            Err(Error::ExperimentPanicked { id }) => assert_eq!(id, "bomb"),
            other => panic!("expected ExperimentPanicked, got {other:?}"),
        }
        assert_eq!(cache.stats().panics_contained, 1);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(cache.get("bomb").unwrap().text, "bomb\n");
    }

    #[test]
    fn a_hung_compute_times_out_the_request_but_settles_the_slot() {
        let cache = fake_cache(vec![Box::new(Sleepy {
            id: "slow",
            sleep: Duration::from_millis(150),
        })]);
        match cache.get_within("slow", Some(Duration::from_millis(20))) {
            Err(Error::ComputeTimeout { id, .. }) => assert_eq!(id, "slow"),
            other => panic!("expected ComputeTimeout, got {other:?}"),
        }
        assert_eq!(cache.stats().timeouts, 1);
        // The compute kept running on its own thread; once it settles,
        // requests are answered from the slot with no new attempt.
        std::thread::sleep(Duration::from_millis(250));
        assert_eq!(cache.get("slow").unwrap().text, "slow\n");
        assert_eq!(cache.stats().computes, 1);
    }
}
