//! `determinism` — the compute paths that back `all --json`'s
//! byte-identical-at-any-thread-count guarantee stay deterministic.
//!
//! Three hazards, each of which has historically produced results that
//! depend on process randomness rather than inputs:
//!
//! * **Hash-order iteration** — `std::collections::HashMap`/`HashSet`
//!   iterate in a per-process random order (SipHash keying). Iterating
//!   one into anything order-sensitive — serialized JSON, a float fold,
//!   a `Vec` that feeds one — makes output depend on the hash seed.
//!   Iterations that end in an order-insensitive sink (`collect` into a
//!   `BTreeMap`/`BTreeSet`, `count`, `any`, `all`, `max`, `min`) pass.
//! * **Float accumulation in loops** — `x += …` over floats is
//!   order-sensitive; the blessed path for reductions is the pairwise
//!   tree fold in `accelwall-par` (`par_map_reduce`) or an exact
//!   mergeable summary (`RegressionSums`). A sequential accumulation
//!   that can never be re-chunked takes a justified allow.
//! * **Wall-clock and thread identity** — `Instant::now`,
//!   `SystemTime`, and `thread::current` inside experiment compute
//!   paths leak the machine into the model; timing belongs in the
//!   bench/server layers.

use crate::lexer::{Token, TokenKind};
use crate::parser::calls_in;
use crate::source::SourceFile;
use crate::symbols::{crate_of, SymbolIndex};
use crate::workspace::Workspace;
use crate::{Finding, Lint};
use std::collections::BTreeSet;

/// See the module docs.
pub struct Determinism;

/// Crates whose shipping code feeds deterministic artifacts: hash-order
/// iteration is policed everywhere here.
const HASH_SCOPES: [&str; 15] = [
    "crates/accelsim",
    "crates/chipdb",
    "crates/cmos",
    "crates/core",
    "crates/csr",
    "crates/dfg",
    "crates/lint",
    "crates/par",
    "crates/potential",
    "crates/projection",
    "crates/query",
    "crates/server",
    "crates/stats",
    "crates/studies",
    "crates/workloads",
];

/// Crates with float reduction kernels: loop accumulation is policed.
const FLOAT_SCOPES: [&str; 3] = ["crates/stats", "crates/chipdb", "crates/projection"];

/// Experiment compute paths: wall-clock and thread identity are banned.
const CLOCK_SCOPES: [&str; 11] = [
    "crates/accelsim",
    "crates/chipdb",
    "crates/cmos",
    "crates/core/src/experiments",
    "crates/csr",
    "crates/dfg",
    "crates/potential",
    "crates/projection",
    "crates/stats",
    "crates/studies",
    "crates/workloads",
];

/// Iterator-producing methods on hash containers.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Chained sinks whose result does not depend on iteration order.
const ORDER_FREE_SINKS: [&str; 5] = ["count", "any", "all", "max", "min"];

impl Lint for Determinism {
    fn name(&self) -> &'static str {
        "determinism"
    }

    fn description(&self) -> &'static str {
        "compute paths stay deterministic: no hash-order iteration, no loop \
         float accumulation outside the tree-fold helpers, no wall-clock reads"
    }

    fn check(&self, ws: &Workspace) -> Vec<Finding> {
        let mut findings = Vec::new();
        let symbols = SymbolIndex::build(ws);
        for file in &ws.files {
            if file.test_file {
                continue;
            }
            let in_scope = |scopes: &[&str]| {
                scopes
                    .iter()
                    .any(|s| file.rel_path.starts_with(&format!("{s}/")))
            };
            if in_scope(&HASH_SCOPES) {
                check_hash_iteration(file, &symbols, &mut findings);
            }
            if in_scope(&FLOAT_SCOPES) {
                check_float_accumulation(file, &symbols, &mut findings);
            }
            if in_scope(&CLOCK_SCOPES) {
                check_clock_reads(file, &mut findings);
            }
        }
        findings
    }
}

/// Names known to be hash-typed in one function's view: parameters and
/// locals whose declaration mentions `HashMap`/`HashSet`, plus the
/// crate's hash-typed struct fields and statics.
fn hash_names(
    code: &[&Token],
    open: usize,
    close: usize,
    params: &[crate::ast::Field],
    symbols: &SymbolIndex,
    krate: &str,
) -> BTreeSet<String> {
    let is_hash_ty = |ty: &str| ty.contains("HashMap") || ty.contains("HashSet");
    let mut names: BTreeSet<String> = params
        .iter()
        .filter(|p| is_hash_ty(&p.ty))
        .map(|p| p.name.clone())
        .collect();
    if let Some(index) = symbols.of(krate) {
        for (name, ty) in index.field_types.iter().chain(&index.static_types) {
            if is_hash_ty(ty) {
                names.insert(name.clone());
            }
        }
    }
    // `let [mut] name … = …;` whose statement mentions a hash type.
    let mut i = open;
    while i < close {
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = code.get(j).filter(|t| t.kind == TokenKind::Ident) {
                let end = statement_end(code, j, close);
                if (j..end).any(|k| code[k].is_ident("HashMap") || code[k].is_ident("HashSet")) {
                    names.insert(name.text.clone());
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    names
}

fn check_hash_iteration(file: &SourceFile, symbols: &SymbolIndex, findings: &mut Vec<Finding>) {
    let code = file.code_tokens();
    let krate = crate_of(&file.rel_path);
    for f in file.parsed.fns_with_bodies() {
        let (open, close) = f.body.unwrap_or((0, 0));
        let names = hash_names(&code, open, close, &f.fields, symbols, &krate);
        if names.is_empty() {
            continue;
        }
        // `.iter()`-family calls on a known hash container.
        for call in calls_in(&code, open, close) {
            if !call.is_method
                || !ITER_METHODS.contains(&call.method.as_str())
                || !call.args.is_empty()
            {
                continue;
            }
            let Some(recv) = call.chain.last() else {
                continue;
            };
            let recv = recv.trim_end_matches("()").trim_end_matches("[]");
            if !names.contains(recv) || file.is_test_line(call.span.line) {
                continue;
            }
            if order_free_sink(&code, call.close, close) {
                continue;
            }
            findings.push(hash_finding(file, call.span.line, call.span.col, recv));
        }
        // `for x in [&[mut]] name { … }` without an iterator method.
        let mut i = open;
        while i < close {
            if code[i].is_ident("for") {
                if let Some((name_at, name)) = for_loop_over(&code, i, close) {
                    if names.contains(&name) && !file.is_test_line(code[name_at].line) {
                        findings.push(hash_finding(
                            file,
                            code[name_at].line,
                            code[name_at].col,
                            &name,
                        ));
                    }
                }
            }
            i += 1;
        }
    }
}

fn hash_finding(file: &SourceFile, line: usize, col: usize, name: &str) -> Finding {
    Finding {
        rule: "determinism",
        path: file.rel_path.clone(),
        line,
        col,
        message: format!(
            "iteration over hash container `{name}`: HashMap/HashSet order is \
             per-process random; collect into a BTreeMap/sorted Vec before \
             folding or serializing, or justify an order-insensitive use with \
             `// lint:allow(determinism): <why>`"
        ),
    }
}

/// If the `for` at `at` iterates a bare (possibly borrowed) identifier,
/// that identifier's code index and text.
fn for_loop_over(code: &[&Token], at: usize, close: usize) -> Option<(usize, String)> {
    // Find `in` at bracket depth 0 within the header.
    let mut nest = 0usize;
    let mut i = at + 1;
    let in_at = loop {
        if i >= close {
            return None;
        }
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            nest = nest.saturating_sub(1);
        } else if t.is_punct("{") {
            return None;
        } else if nest == 0 && t.is_ident("in") {
            break i;
        }
        i += 1;
    };
    let mut j = in_at + 1;
    while code
        .get(j)
        .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
    {
        j += 1;
    }
    let name = code.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    // The expression must end right there: `for x in map {`.
    if code.get(j + 1).is_some_and(|t| t.is_punct("{")) {
        Some((j, name.text.clone()))
    } else {
        None
    }
}

/// Whether the postfix chain after an iterator call ends in an
/// order-insensitive sink.
fn order_free_sink(code: &[&Token], mut close: usize, limit: usize) -> bool {
    loop {
        let Some(dot) = code.get(close + 1).filter(|t| t.is_punct(".")) else {
            return false;
        };
        let _ = dot;
        let Some(method) = code.get(close + 2).filter(|t| t.kind == TokenKind::Ident) else {
            return false;
        };
        // Locate the call parens (turbofish allowed).
        let mut open = close + 3;
        let mut turbofish_btree = false;
        if code.get(open).is_some_and(|t| t.is_punct("::"))
            && code.get(open + 1).is_some_and(|t| t.is_punct("<"))
        {
            let angle_end = angle_close(code, open + 1);
            turbofish_btree = (open..=angle_end)
                .any(|k| code[k].is_ident("BTreeMap") || code[k].is_ident("BTreeSet"));
            open = angle_end + 1;
        }
        if !code.get(open).is_some_and(|t| t.is_punct("(")) {
            return false;
        }
        if ORDER_FREE_SINKS.contains(&method.text.as_str())
            || (method.is_ident("collect") && turbofish_btree)
        {
            return true;
        }
        close = match_close(code, open, limit);
    }
}

fn check_float_accumulation(file: &SourceFile, symbols: &SymbolIndex, findings: &mut Vec<Finding>) {
    let code = file.code_tokens();
    let krate = crate_of(&file.rel_path);
    for f in file.parsed.fns_with_bodies() {
        let (open, close) = f.body.unwrap_or((0, 0));
        let floats = float_names(&code, open, close, &f.fields);
        let loops = loop_ranges(&code, open, close);
        if loops.is_empty() {
            continue;
        }
        let mut i = open;
        while i < close {
            let t = code[i];
            let compound = (t.is_punct("+") || t.is_punct("-"))
                && code.get(i + 1).is_some_and(|n| n.is_punct("="))
                && !code
                    .get(i.wrapping_sub(1))
                    .is_some_and(|p| p.is_punct("+") || p.is_punct("-"));
            if compound && loops.iter().any(|&(s, e)| s < i && i < e) {
                let target = assign_target(&code, i);
                let is_float = target.as_ref().is_some_and(|name| {
                    floats.contains(name)
                        || symbols
                            .type_of(&krate, name)
                            .is_some_and(|ty| ty.contains("f64") || ty.contains("f32"))
                }) || rhs_has_float_literal(&code, i + 2, close);
                if is_float && !file.is_test_line(t.line) {
                    findings.push(Finding {
                        rule: "determinism",
                        path: file.rel_path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "float accumulation `{} {}=` inside a loop: reduction \
                             order must not depend on chunking — route through the \
                             pairwise tree fold (`par_map_reduce`) or an exact \
                             mergeable summary, or justify fixed-order accumulation \
                             with `// lint:allow(determinism): <why>`",
                            target.as_deref().unwrap_or("<expr>"),
                            t.text
                        ),
                    });
                }
            }
            i += 1;
        }
    }
}

/// Float-typed names visible in one function: `f32`/`f64` parameters
/// and let-bindings whose statement carries a float literal, a float
/// type annotation, or an already-known float name (fixpoint).
fn float_names(
    code: &[&Token],
    open: usize,
    close: usize,
    params: &[crate::ast::Field],
) -> BTreeSet<String> {
    let is_float_ty = |ty: &str| ty.contains("f64") || ty.contains("f32");
    let mut floats: BTreeSet<String> = params
        .iter()
        .filter(|p| is_float_ty(&p.ty))
        .map(|p| p.name.clone())
        .collect();
    // Collect (binding, statement range) pairs once, then iterate to a
    // fixpoint so `let a = 0.0; let b = a;` marks both.
    let mut bindings: Vec<(String, usize, usize)> = Vec::new();
    let mut i = open;
    while i < close {
        let t = code[i];
        if t.is_ident("let") || t.is_ident("for") {
            let is_for = t.is_ident("for");
            let mut j = i + 1;
            if code.get(j).is_some_and(|n| n.is_ident("mut")) {
                j += 1;
            }
            // Single ident, or the last ident of a small tuple pattern
            // (`for (i, slot) in xs.iter_mut().enumerate()` binds the
            // payload last).
            let mut name = code
                .get(j)
                .filter(|n| n.kind == TokenKind::Ident)
                .map(|n| n.text.clone());
            if name.is_none() && code.get(j).is_some_and(|n| n.is_punct("(")) {
                let close_paren = match_close(code, j, close);
                name = (j..close_paren)
                    .rev()
                    .map(|k| code[k])
                    .find(|n| n.kind == TokenKind::Ident && !n.is_ident("mut"))
                    .map(|n| n.text.clone());
                j = close_paren;
            }
            if let Some(name) = name {
                let end = if is_for {
                    // The iterated expression runs to the body `{`.
                    let mut k = j + 1;
                    let mut nest = 0usize;
                    while k < close {
                        let t = code[k];
                        if t.is_punct("(") || t.is_punct("[") {
                            nest += 1;
                        } else if t.is_punct(")") || t.is_punct("]") {
                            nest = nest.saturating_sub(1);
                        } else if nest == 0 && t.is_punct("{") {
                            break;
                        }
                        k += 1;
                    }
                    k
                } else {
                    statement_end(code, j, close)
                };
                bindings.push((name, j, end));
                i = j;
            }
        }
        i += 1;
    }
    loop {
        let mut grew = false;
        for (name, start, end) in &bindings {
            if floats.contains(name) {
                continue;
            }
            let floaty = (*start..*end).any(|k| {
                let t = code[k];
                t.kind == TokenKind::Float
                    || t.is_ident("f64")
                    || t.is_ident("f32")
                    || (t.kind == TokenKind::Ident && floats.contains(&t.text))
            });
            if floaty {
                floats.insert(name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    floats
}

/// The base name of a compound-assignment target: `*sum` → `sum`,
/// `self.total` → `total`, `acc[i]` → `acc`.
fn assign_target(code: &[&Token], op_at: usize) -> Option<String> {
    let mut i = op_at.checked_sub(1)?;
    if code[i].is_punct("]") {
        // `name[index] += …`: skip the index.
        let mut depth = 0usize;
        loop {
            if code[i].is_punct("]") {
                depth += 1;
            } else if code[i].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i = i.checked_sub(1)?;
        }
        i = i.checked_sub(1)?;
    }
    code.get(i)
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

/// Whether the statement's right-hand side carries a float literal.
fn rhs_has_float_literal(code: &[&Token], from: usize, close: usize) -> bool {
    let end = statement_end(code, from, close);
    (from..end).any(|k| code[k].kind == TokenKind::Float)
}

/// The body ranges of every `for`/`while` loop in `[open, close)`.
fn loop_ranges(code: &[&Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = open;
    while i < close {
        if code[i].is_ident("for") || code[i].is_ident("while") {
            // The body `{` at bracket depth 0 after the header.
            let mut nest = 0usize;
            let mut j = i + 1;
            while j < close {
                let t = code[j];
                if t.is_punct("(") || t.is_punct("[") {
                    nest += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    nest = nest.saturating_sub(1);
                } else if nest == 0 && t.is_punct("{") {
                    ranges.push((j, match_close_brace(code, j, close)));
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    ranges
}

fn check_clock_reads(file: &SourceFile, findings: &mut Vec<Finding>) {
    let code = file.code_tokens();
    for (i, t) in code.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        let hazard = if t.is_ident("Instant") || t.is_ident("SystemTime") {
            Some(t.text.as_str())
        } else if t.is_ident("thread")
            && code.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && code.get(i + 2).is_some_and(|n| n.is_ident("current"))
        {
            Some("thread::current")
        } else {
            None
        };
        if let Some(what) = hazard {
            findings.push(Finding {
                rule: "determinism",
                path: file.rel_path.clone(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{what}` inside an experiment compute path: model outputs must \
                     depend only on inputs — timing and thread identity belong in \
                     the bench/server layers, or justify with \
                     `// lint:allow(determinism): <why>`"
                ),
            });
        }
    }
}

fn statement_end(code: &[&Token], from: usize, close: usize) -> usize {
    let mut nest = 0usize;
    let mut i = from;
    while i < close {
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            if nest == 0 {
                return i;
            }
            nest = nest.saturating_sub(1);
        } else if nest == 0 && t.is_punct(";") {
            return i;
        }
        i += 1;
    }
    close
}

fn match_close(code: &[&Token], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < limit.min(code.len()) {
        if code[i].is_punct("(") {
            depth += 1;
        } else if code[i].is_punct(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit.min(code.len()).saturating_sub(1)
}

fn match_close_brace(code: &[&Token], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < limit.min(code.len()) {
        if code[i].is_punct("{") {
            depth += 1;
        } else if code[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit.min(code.len()).saturating_sub(1)
}

fn angle_close(code: &[&Token], from: usize) -> usize {
    let mut angle = 0usize;
    let mut nest = 0usize;
    let mut i = from;
    while i < code.len() {
        let t = code[i];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            nest += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            nest = nest.saturating_sub(1);
        } else if nest == 0 && t.is_punct("<") {
            angle += 1;
        } else if nest == 0 && t.is_punct(">") {
            angle -= 1;
            if angle == 0 {
                return i;
            }
        }
        i += 1;
    }
    code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::testutil::workspace;

    fn check_at(path: &str, src: &str) -> Vec<Finding> {
        Determinism.check(&workspace(&[(path, src)]))
    }

    #[test]
    fn flags_hash_map_iteration() {
        let src = "use std::collections::HashMap;\n\
            pub fn render(map: &HashMap<String, f64>) -> String {\n\
                let mut out = String::new();\n\
                for (k, v) in map.iter() {\n\
                    out.push_str(&format!(\"{k}={v}\"));\n\
                }\n\
                out\n\
            }\n";
        let found = check_at("crates/dfg/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("hash container"));
    }

    #[test]
    fn flags_bare_for_over_hash_set() {
        let src = "use std::collections::HashSet;\n\
            pub fn dump(seen: &HashSet<u32>, set: HashSet<u32>) {\n\
                let _ = seen;\n\
                for v in set { println!(\"{v}\"); }\n\
            }\n";
        let found = check_at("crates/stats/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn order_free_sinks_pass() {
        let src = "use std::collections::{BTreeMap, HashMap};\n\
            pub fn f(map: &HashMap<String, u32>) -> (usize, bool, BTreeMap<String, u32>) {\n\
                let n = map.keys().count();\n\
                let any = map.values().any(|v| *v > 3);\n\
                let sorted = map.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>();\n\
                (n, any, sorted)\n\
            }\n";
        assert!(check_at("crates/dfg/src/lib.rs", src).is_empty());
    }

    #[test]
    fn lookups_and_inserts_pass() {
        let src = "use std::collections::HashMap;\n\
            pub fn f(map: &mut HashMap<String, u32>) -> Option<u32> {\n\
                map.insert(\"x\".into(), 1);\n\
                map.get(\"x\").copied()\n\
            }\n";
        assert!(check_at("crates/dfg/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_float_accumulation_in_loop() {
        let src = "pub fn total(xs: &[f64]) -> f64 {\n\
                let mut sum = 0.0;\n\
                for &x in xs { sum += x; }\n\
                sum\n\
            }\n";
        let found = check_at("crates/stats/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("tree fold"));
    }

    #[test]
    fn flags_deref_accumulator_via_vec_binding() {
        let src = "pub fn powers(xs: &[f64]) -> Vec<f64> {\n\
                let mut sums = vec![0.0; 4];\n\
                for &x in xs {\n\
                    for (i, slot) in sums.iter_mut().enumerate() {\n\
                        *slot += x + i as f64;\n\
                    }\n\
                }\n\
                sums\n\
            }\n";
        let found = check_at("crates/stats/src/lib.rs", src);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn integer_accumulation_and_non_loop_float_pass() {
        let src = "pub fn f(xs: &[u32], a: f64, b: f64) -> (u32, f64) {\n\
                let mut n = 0u32;\n\
                for &x in xs { n += x; }\n\
                let mut acc = a;\n\
                acc += b;\n\
                (n, acc)\n\
            }\n";
        assert!(check_at("crates/stats/src/lib.rs", src).is_empty());
    }

    #[test]
    fn float_scope_is_limited() {
        let src = "pub fn f(xs: &[f64]) -> f64 {\n\
                let mut s = 0.0;\n\
                for &x in xs { s += x; }\n\
                s\n\
            }\n";
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn flags_clock_reads_in_compute_paths_only() {
        let src = "use std::time::Instant;\n\
            pub fn f() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n";
        assert_eq!(check_at("crates/accelsim/src/lib.rs", src).len(), 2);
        assert!(check_at("crates/server/src/lib.rs", src).is_empty());
    }

    #[test]
    fn test_scope_is_exempt() {
        let src = "use std::collections::HashMap;\n\
            #[cfg(test)]\n\
            mod tests {\n\
                use super::*;\n\
                fn t(map: &HashMap<u32, u32>) {\n\
                    for (k, v) in map.iter() { let _ = (k, v); }\n\
                }\n\
            }\n";
        assert!(check_at("crates/dfg/src/lib.rs", src).is_empty());
    }
}
