//! Synthetic datasheet corpus generator.
//!
//! Substitute for the paper's scrape of 1612 CPU and 1001 GPU datasheets
//! (CPU DB, TechPowerUp). The generating process is the *published* model
//! plus log-normal noise:
//!
//! * transistor count: `TC = 4.99e9 · D^0.877 · ε`,
//! * TDP: inverted from the record's node-group law
//!   `TC[G] × f[GHz] = c · TDP^e`, perturbed by `ε`,
//!
//! with `ln ε ~ N(0, σ²)`. Because OLS in log-log space is the
//! maximum-likelihood estimator under exactly this noise model, fitting the
//! synthetic corpus recovers the published coefficients — the only use the
//! paper ever makes of the raw data (see DESIGN.md, substitutions table).

use crate::fit::{NodeGroup, PAPER_TC_LAW};
use crate::{ChipKind, ChipRecord};
use accelwall_cmos::TechNode;
use accelwall_stats::Rng;

/// Configuration of a synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Number of CPU records to generate.
    pub cpus: usize,
    /// Number of GPU records to generate.
    pub gpus: usize,
    /// Standard deviation of the log-normal datasheet noise.
    pub log_noise_sigma: f64,
    /// RNG seed; a fixed seed makes the corpus reproducible.
    pub seed: u64,
}

impl CorpusSpec {
    /// The paper-scale corpus: 1612 CPUs and 1001 GPUs, with a noise level
    /// (σ = 0.25 in log space, i.e. roughly ±30% scatter) that matches the
    /// visual spread of Fig. 3b.
    pub fn paper_scale() -> Self {
        CorpusSpec {
            cpus: 1612,
            gpus: 1001,
            log_noise_sigma: 0.25,
            seed: 0xACCE_13B0,
        }
    }

    /// A small corpus for fast tests.
    pub fn small() -> Self {
        CorpusSpec {
            cpus: 120,
            gpus: 80,
            log_noise_sigma: 0.2,
            seed: 7,
        }
    }

    /// Generates the corpus deterministically from the seed.
    ///
    /// Records are produced in fixed chunks of [`GENERATE_CHUNK`], each
    /// drawing from its own RNG stream seeded by `(seed, chunk index)` —
    /// not by call order — so the corpus is a pure function of the spec
    /// whether the chunks run serially or across the `accelwall-par`
    /// pool. The record at position `i` is a CPU for `i < cpus`, a GPU
    /// otherwise.
    pub fn generate(&self) -> Vec<ChipRecord> {
        let total = self.cpus + self.gpus;
        let spec = self.clone();
        accelwall_par::par_chunks(total, GENERATE_CHUNK, move |range| {
            spec.generate_chunk(range.start / GENERATE_CHUNK)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Number of generation chunks ([`GENERATE_CHUNK`] records each, the
    /// last possibly partial).
    pub fn chunk_count(&self) -> usize {
        (self.cpus + self.gpus).div_ceil(GENERATE_CHUNK)
    }

    /// Generates one chunk of the corpus: the records at positions
    /// `[chunk · GENERATE_CHUNK, (chunk + 1) · GENERATE_CHUNK)` (clamped
    /// to the corpus size), drawn from that chunk's own RNG stream.
    ///
    /// [`generate`](CorpusSpec::generate) is exactly the concatenation of
    /// every chunk in index order, so shards computed on different
    /// machines reassemble into the bit-identical corpus. The distributed
    /// `corpus` work grid leases these chunks as its units.
    pub fn generate_chunk(&self, chunk: usize) -> Vec<ChipRecord> {
        let total = self.cpus + self.gpus;
        let start = (chunk * GENERATE_CHUNK).min(total);
        let end = ((chunk + 1) * GENERATE_CHUNK).min(total);
        let mut rng = Rng::seed(chunk_stream_seed(self.seed, chunk as u64));
        (start..end)
            .map(|i| {
                if i < self.cpus {
                    synthesize(&mut rng, ChipKind::Cpu, i, self.log_noise_sigma)
                } else {
                    synthesize(&mut rng, ChipKind::Gpu, i - self.cpus, self.log_noise_sigma)
                }
            })
            .collect()
    }
}

/// Records per RNG stream. This constant is part of the corpus
/// definition: changing it re-seeds every stream and therefore changes
/// every record (pinned by `paper_scale_corpus_is_pinned` below), so it
/// must not be retuned casually.
pub const GENERATE_CHUNK: usize = 64;

/// Derives the RNG seed of one generation chunk from the corpus seed.
/// A SplitMix64-style finalizer decorrelates adjacent chunk indices.
fn chunk_stream_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec::paper_scale()
    }
}

/// Nodes sampled for the corpus, paired with rough era weights. The spread
/// mirrors Fig. 3b's legend groups (180–90, 80–45, 40–20, 16–12 nm).
const NODE_POOL: &[(TechNode, u32)] = &[
    (TechNode::N180, 6),
    (TechNode::N130, 8),
    (TechNode::N110, 4),
    (TechNode::N90, 8),
    (TechNode::N65, 10),
    (TechNode::N55, 6),
    (TechNode::N45, 10),
    (TechNode::N40, 8),
    (TechNode::N32, 8),
    (TechNode::N28, 12),
    (TechNode::N22, 8),
    (TechNode::N20, 4),
    (TechNode::N16, 8),
    (TechNode::N14, 6),
    (TechNode::N12, 2),
];

fn pick_node(rng: &mut Rng) -> TechNode {
    let total: u32 = NODE_POOL.iter().map(|(_, w)| w).sum();
    let mut roll = rng.below(u64::from(total)) as u32;
    for &(node, w) in NODE_POOL {
        if roll < w {
            return node;
        }
        roll -= w;
    }
    unreachable!("weights cover the roll range")
}

fn synthesize(rng: &mut Rng, kind: ChipKind, index: usize, sigma: f64) -> ChipRecord {
    let node = pick_node(rng);
    // Die area: CPUs cluster 60–400 mm², GPUs 80–700 mm² (log-uniform).
    let (area_lo, area_hi) = match kind {
        ChipKind::Cpu => (60.0f64, 400.0f64),
        _ => (80.0f64, 700.0f64),
    };
    let area = rng.log_uniform(area_lo, area_hi);
    let d = node.density_factor(area);
    let transistors = PAPER_TC_LAW.eval(d) * (sigma * rng.std_normal()).exp();

    // Frequency: CPUs 1.5–4 GHz scaled by era; GPUs 0.5–1.8 GHz.
    let speedup = node.frequency_potential().min(2.0);
    let freq_mhz = match kind {
        ChipKind::Cpu => rng.uniform(1200.0, 2200.0) * speedup.max(0.5),
        _ => rng.uniform(500.0, 900.0) * speedup.max(0.5),
    };

    // TDP: invert the node-group law where one exists; older nodes fall
    // back to a classical (pre-dark-silicon) proportional model.
    // TDP carries only a third of the datasheet noise: heavy multiplicative
    // noise on the *predictor* of a log-log regression would attenuate the
    // fitted exponent (classical errors-in-variables bias), which real
    // datasheets — where TDP is a designed-in bin, not a measurement —
    // do not exhibit.
    let cap = (transistors / 1e9) * (freq_mhz / 1e3);
    let tdp_noise = (sigma / 3.0 * rng.std_normal()).exp();
    let tdp_w = match NodeGroup::of(node) {
        Some(group) => group.paper_tdp_law().invert(cap) * tdp_noise,
        None => (cap * 400.0 * node.dynamic_energy_rel()) * tdp_noise,
    }
    .clamp(3.0, 900.0);

    let year = 1999 + (node.density_rel().log2() * 1.4 + 6.0).clamp(0.0, 19.0) as u32;

    ChipRecord {
        name: format!("{kind}-{index:04}"),
        kind,
        node,
        die_area_mm2: area,
        transistors,
        tdp_w,
        freq_mhz,
        year,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit;

    #[test]
    fn paper_scale_counts() {
        let corpus = CorpusSpec::paper_scale().generate();
        assert_eq!(corpus.len(), 2613);
        let cpus = corpus.iter().filter(|r| r.kind == ChipKind::Cpu).count();
        assert_eq!(cpus, 1612);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CorpusSpec::small().generate();
        let b = CorpusSpec::small().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn generate_is_the_concatenation_of_chunks() {
        let spec = CorpusSpec::small();
        let chunked: Vec<ChipRecord> = (0..spec.chunk_count())
            .flat_map(|c| spec.generate_chunk(c))
            .collect();
        assert_eq!(chunked, spec.generate());
        // Past-the-end chunks are empty, not a panic.
        assert!(spec.generate_chunk(spec.chunk_count()).is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = CorpusSpec::small();
        let a = spec.generate();
        spec.seed += 1;
        let b = spec.generate();
        assert_ne!(a, b);
    }

    #[test]
    fn records_are_physically_sane() {
        for r in CorpusSpec::small().generate() {
            assert!(r.die_area_mm2 > 10.0 && r.die_area_mm2 < 1000.0, "{r:?}");
            assert!(r.transistors > 1e5 && r.transistors < 1e12, "{r:?}");
            assert!(r.tdp_w >= 3.0 && r.tdp_w <= 900.0, "{r:?}");
            assert!(r.freq_mhz > 100.0 && r.freq_mhz < 9000.0, "{r:?}");
            assert!((1999..=2018).contains(&r.year), "{r:?}");
        }
    }

    #[test]
    fn paper_scale_corpus_is_pinned() {
        // Guards the per-chunk seed derivation: retuning GENERATE_CHUNK
        // or chunk_stream_seed would silently regenerate every record,
        // shifting every corpus-derived figure. The first and last
        // paper-scale records are pinned bit-exactly.
        let corpus = CorpusSpec::paper_scale().generate();
        let first = &corpus[0];
        assert_eq!(first.name, "CPU-0000");
        assert_eq!(first.kind, ChipKind::Cpu);
        assert_eq!(first.node, TechNode::N45);
        assert_eq!(first.die_area_mm2, 206.926_879_298_365_12);
        assert_eq!(first.transistors, 507_994_917.472_838_4);
        assert_eq!(first.tdp_w, 110.600_189_537_557_71);
        assert_eq!(first.freq_mhz, 2_083.416_772_185_071_3);
        assert_eq!(first.year, 2005);
        let last = &corpus[corpus.len() - 1];
        assert_eq!(last.name, "GPU-1000");
        assert_eq!(last.kind, ChipKind::Gpu);
        assert_eq!(last.node, TechNode::N14);
        assert_eq!(last.die_area_mm2, 377.415_754_644_541_15);
        assert_eq!(last.transistors, 10_891_732_509.756_414);
        assert_eq!(last.tdp_w, 378.714_909_762_174_8);
        assert_eq!(last.freq_mhz, 1_221.570_554_461_746_7);
        assert_eq!(last.year, 2009);
    }

    #[test]
    fn corpus_fit_recovers_fig3b_law() {
        let corpus = CorpusSpec::paper_scale().generate();
        let law = fit::transistor_density_fit(&corpus).unwrap();
        assert!(
            (law.exponent - fit::PAPER_TC_EXPONENT).abs() < 0.03,
            "exponent {}",
            law.exponent
        );
        assert!(
            (law.coefficient / fit::PAPER_TC_COEFFICIENT - 1.0).abs() < 0.15,
            "coefficient {:e}",
            law.coefficient
        );
        assert!(law.r_squared > 0.9, "r2 {}", law.r_squared);
    }

    #[test]
    fn corpus_fit_recovers_fig3c_laws() {
        let corpus = CorpusSpec::paper_scale().generate();
        for &group in NodeGroup::all() {
            if group == NodeGroup::N10ToN5 {
                // Projection-only group: no manufactured chips in the corpus.
                continue;
            }
            let published = group.paper_tdp_law();
            let fitted = fit::tdp_fit(&corpus, group).unwrap();
            assert!(
                (fitted.exponent - published.exponent).abs() < 0.06,
                "{group}: exponent {} vs {}",
                fitted.exponent,
                published.exponent
            );
        }
    }
}
